"""Unit tests for the PointCloud container."""

import numpy as np
import pytest

from repro.geometry import PointCloud


def make_cloud(n=10, seed=0):
    rng = np.random.default_rng(seed)
    return PointCloud(rng.normal(size=(n, 3)))


class TestConstruction:
    def test_basic_shape(self):
        cloud = make_cloud(7)
        assert len(cloud) == 7
        assert cloud.num_points == 7
        assert cloud.points.shape == (7, 3)
        assert cloud.points.dtype == np.float64

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            PointCloud(np.zeros((5, 2)))
        with pytest.raises(ValueError):
            PointCloud(np.zeros(5))

    def test_rejects_mismatched_features(self):
        with pytest.raises(ValueError):
            PointCloud(np.zeros((5, 3)), features=np.zeros((4, 2)))

    def test_rejects_mismatched_labels(self):
        with pytest.raises(ValueError):
            PointCloud(np.zeros((5, 3)), labels=np.zeros(6, dtype=int))

    def test_accepts_features_and_labels(self):
        cloud = PointCloud(
            np.zeros((5, 3)), features=np.ones((5, 2)), labels=np.arange(5)
        )
        assert cloud.features.shape == (5, 2)
        assert cloud.labels.dtype == np.int64

    def test_casts_to_float64(self):
        cloud = PointCloud(np.zeros((3, 3), dtype=np.float32))
        assert cloud.points.dtype == np.float64


class TestGeometry:
    def test_centroid(self):
        pts = np.array([[0, 0, 0], [2, 2, 2]], dtype=float)
        assert np.allclose(PointCloud(pts).centroid, [1, 1, 1])

    def test_bounds(self):
        pts = np.array([[0, -1, 5], [2, 3, -4]], dtype=float)
        bounds = PointCloud(pts).bounds
        assert np.allclose(bounds[0], [0, -1, -4])
        assert np.allclose(bounds[1], [2, 3, 5])

    def test_normalized_unit_ball(self):
        cloud = make_cloud(50).normalized()
        norms = np.linalg.norm(cloud.points, axis=1)
        assert norms.max() <= 1.0 + 1e-12
        assert np.allclose(cloud.centroid, 0.0, atol=1e-9)

    def test_normalized_degenerate_single_point(self):
        cloud = PointCloud(np.array([[3.0, 4.0, 5.0]])).normalized()
        assert np.allclose(cloud.points, 0.0)

    def test_subset_preserves_attributes(self):
        cloud = PointCloud(
            np.arange(15, dtype=float).reshape(5, 3),
            labels=np.arange(5),
            attrs={"class_id": 3},
        )
        sub = cloud.subset([0, 2])
        assert len(sub) == 2
        assert sub.labels.tolist() == [0, 2]
        assert sub.attrs["class_id"] == 3

    def test_with_attrs_merges(self):
        cloud = make_cloud().with_attrs(a=1)
        cloud2 = cloud.with_attrs(b=2)
        assert cloud2.attrs == {"a": 1, "b": 2}
        assert cloud.attrs == {"a": 1}
