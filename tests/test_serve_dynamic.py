"""Dynamic (mutating-cloud) serving parity: service, session, shards.

The acceptance pin for PR 10: a ≥50-frame drifting-scene trace served
through ``QueryService`` with incremental index maintenance is
**bit-identical per frame** to rebuild-from-scratch maintenance — and to
the multi-process ``ShardedQueryService``, where ``update_handle``
messages route to the owning shard and apply between flushes.  Around
that sit the session's digest-aware invalidation, handle aliasing rules,
and dynamic-handle worker recovery.
"""

import numpy as np
import pytest

from repro.kdtree import DynamicKdTree
from repro.runtime.session import SearchSession, dynamic_handle, geometry_digest
from repro.serve import (
    QueryService,
    ShardedQueryService,
    drift_trace,
    replay_drift_trace,
)


# ----------------------------------------------------------------------
# The acceptance criterion: the 50-frame drifting-scene trace
# ----------------------------------------------------------------------

class TestDriftTraceParity:
    def test_fifty_frame_trace_incremental_rebuild_and_sharded(self):
        report = replay_drift_trace(
            num_frames=50,
            requests_per_frame=1,
            queries_per_request=12,
            num_points=400,
            churn=0.03,
            seed=7,
            num_workers=2,
        )
        assert report.frames == 50
        assert report.requests == 50
        assert report.results_identical  # incremental == rebuild, per frame
        assert report.sharded_identical  # == multi-process tier
        # The incremental path must have done strictly less index-build
        # work than rebuilding every frame (the point of the PR).
        assert report.incremental_points_indexed < report.rebuild_points_indexed
        assert len(report.incremental_waits) == 50

    def test_trace_generator_is_deterministic(self):
        initial_a, frames_a = drift_trace(num_frames=5, num_points=100, seed=3)
        initial_b, frames_b = drift_trace(num_frames=5, num_points=100, seed=3)
        np.testing.assert_array_equal(initial_a, initial_b)
        for fa, fb in zip(frames_a, frames_b):
            np.testing.assert_array_equal(fa.inserts, fb.inserts)
            np.testing.assert_array_equal(fa.removes, fb.removes)
            for (qa, ra, ka), (qb, rb, kb) in zip(fa.requests, fb.requests):
                np.testing.assert_array_equal(qa, qb)
                assert ra == rb and ka == kb


# ----------------------------------------------------------------------
# QueryService dynamic handles
# ----------------------------------------------------------------------

class TestServiceDynamic:
    def test_submit_dynamic_matches_direct_engine(self, rng):
        pts = rng.normal(size=(120, 3))
        service = QueryService()
        handle = service.register_dynamic(pts)
        mirror = DynamicKdTree(pts)
        for _ in range(5):
            removes = rng.choice(mirror.alive_slots(), size=6, replace=False)
            inserts = rng.normal(size=(6, 3))
            service.update(handle, inserts=inserts, removes=removes)
            mirror.remove(removes)
            mirror.insert(inserts)
            queries = rng.normal(size=(8, 3))
            ticket = service.submit_dynamic(handle, queries, 1.0, 6)
            service.flush()
            want_idx, want_cnt = mirror.query(queries, 1.0, 6)
            got_idx, got_cnt = ticket.result()
            np.testing.assert_array_equal(got_idx, want_idx)
            np.testing.assert_array_equal(got_cnt, want_cnt)

    def test_static_and_dynamic_requests_share_a_flush(self, rng):
        static_pts = rng.normal(size=(60, 3))
        dyn_pts = rng.normal(size=(60, 3))
        service = QueryService()
        handle = service.register_dynamic(dyn_pts)
        t_static = service.submit(static_pts, static_pts[:4], 0.5, 4)
        t_dyn = service.submit_dynamic(handle, dyn_pts[:4], 0.5, 4)
        assert service.pending == 2
        service.flush()
        assert t_static.error is None and t_dyn.error is None
        # The dynamic rows answer in slot space: every counted neighbor of
        # a query drawn from the cloud itself includes the query's own slot.
        idx, cnt = t_dyn.result()
        assert (cnt >= 1).all()
        for qi in range(4):
            assert qi in idx[qi]

    def test_unknown_handle_rejected_at_submit(self):
        service = QueryService()
        with pytest.raises(KeyError, match="unknown dynamic handle"):
            service.submit_dynamic("no-such-handle", np.zeros((1, 3)), 0.5, 4)
        with pytest.raises(KeyError, match="unknown dynamic handle"):
            service.update("no-such-handle", inserts=np.zeros((1, 3)))
        assert service.pending == 0

    def test_identical_initial_clouds_do_not_alias(self, rng):
        """Two registrations of the same points drift independently."""
        pts = rng.normal(size=(40, 3))
        service = QueryService()
        h1 = service.register_dynamic(pts)
        h2 = service.register_dynamic(pts.copy())
        assert h1 != h2
        service.update(h1, removes=np.array([0]))
        assert len(service.session.dynamic(h1)) == 39
        assert len(service.session.dynamic(h2)) == 40

    def test_update_validates_before_mutating(self, rng):
        service = QueryService()
        handle = service.register_dynamic(rng.normal(size=(10, 3)))
        with pytest.raises(ValueError, match="finite"):
            service.update(handle, inserts=np.array([[np.nan, 0.0, 0.0]]))
        with pytest.raises(ValueError, match="out of range"):
            service.update(handle, removes=np.array([99]))
        assert len(service.session.dynamic(handle)) == 10


# ----------------------------------------------------------------------
# Session: digest-aware invalidation
# ----------------------------------------------------------------------

class TestSessionInvalidation:
    def test_invalidate_drops_tree_split_and_result_entries(self, rng):
        session = SearchSession()
        pts = rng.normal(size=(80, 3))
        digest = geometry_digest(pts)
        tree = session.tree_for(pts)
        session.split_tree_for(tree, 2)
        # Results key on (caller key, content digest) via memo_key.
        session.results.put(session.memo_key("probe", digest=digest), "value")
        assert len(session.trees) == 1
        assert len(session.split_trees) == 1
        assert len(session.results) == 1
        dropped = session.invalidate(digest)
        assert dropped == 3
        assert len(session.trees) == 0
        assert len(session.split_trees) == 0
        assert len(session.results) == 0
        # Idempotent: nothing left to drop.
        assert session.invalidate(digest) == 0

    def test_invalidate_leaves_other_digests_alone(self, rng):
        session = SearchSession()
        a = rng.normal(size=(50, 3))
        b = rng.normal(size=(50, 3))
        session.tree_for(a)
        session.tree_for(b)
        assert session.invalidate(geometry_digest(a)) == 1
        assert len(session.trees) == 1  # b survives

    def test_update_invalidates_the_previous_content_digest(self, rng):
        session = SearchSession()
        pts = rng.normal(size=(50, 3))
        handle = session.register_dynamic(pts)
        old = session.dynamic(handle).digest
        # Park a result under the *current* content digest, as a serving
        # layer keying caches by content would.
        session.results.put(("probe", old), "stale")
        new = session.update(handle, removes=np.array([1]))
        assert new != old
        assert session.results.get(("probe", old), None) is None

    def test_dynamic_handle_is_sequence_salted(self):
        assert dynamic_handle("abc", 0) != dynamic_handle("abc", 1)
        int(dynamic_handle("abc", 0)[:16], 16)  # hex: shard-routable

    def test_session_clear_keeps_dynamic_registrations(self, rng):
        session = SearchSession()
        handle = session.register_dynamic(rng.normal(size=(20, 3)))
        session.clear()
        assert len(session.dynamic(handle)) == 20

    def test_dynamic_layout_survives_and_refreshes(self, rng):
        session = SearchSession()
        handle = session.register_dynamic(rng.normal(size=(200, 3)))
        layout = session.dynamic_layout_for(handle, 3)
        built = layout.layouts_built
        assert session.dynamic_layout_for(handle, 3) is layout
        session.update(handle, inserts=rng.normal(size=(600, 3)))
        session.dynamic(handle).refresh(flush=True)
        assert session.dynamic_layout_for(handle, 3).layouts_built > built


# ----------------------------------------------------------------------
# Sharded tier: routed updates and worker recovery
# ----------------------------------------------------------------------

class TestShardedDynamic:
    def test_updates_route_to_owning_shard_with_parity(self, rng):
        pts = rng.normal(size=(150, 3))
        single = QueryService()
        s_handle = single.register_dynamic(pts)
        with ShardedQueryService(num_workers=2) as tier:
            t_handle = tier.register_dynamic(pts)
            for _ in range(6):
                removes = rng.choice(
                    single.session.dynamic(s_handle).alive_slots(),
                    size=8,
                    replace=False,
                )
                inserts = rng.normal(size=(8, 3))
                single.update(s_handle, inserts=inserts, removes=removes)
                tier.update(t_handle, inserts=inserts, removes=removes)
                queries = rng.normal(size=(6, 3))
                st = single.submit_dynamic(s_handle, queries, 1.0, 5)
                tt = tier.submit_dynamic(t_handle, queries, 1.0, 5)
                single.flush()
                tier.flush()
                np.testing.assert_array_equal(st.result()[0], tt.result()[0])
                np.testing.assert_array_equal(st.result()[1], tt.result()[1])

    def test_respawn_reships_mutated_dynamic_state(self, rng):
        pts = rng.normal(size=(100, 3))
        single = QueryService()
        s_handle = single.register_dynamic(pts)
        with ShardedQueryService(num_workers=2) as tier:
            t_handle = tier.register_dynamic(pts)
            # Mutate PAST registration, so recovery must re-ship current
            # state, not the registration-time snapshot.
            removes = np.arange(10)
            inserts = rng.normal(size=(10, 3))
            single.update(s_handle, inserts=inserts, removes=removes)
            tier.update(t_handle, inserts=inserts, removes=removes)
            queries = rng.normal(size=(5, 3))
            st = single.submit_dynamic(s_handle, queries, 1.0, 4)
            tt = tier.submit_dynamic(t_handle, queries, 1.0, 4)
            single.flush()
            tier.flush()
            np.testing.assert_array_equal(st.result()[0], tt.result()[0])
            # Kill the shard that owns the handle, between flushes.
            owner = tier._slot_for(t_handle)
            tier._workers[owner].kill()
            st2 = single.submit_dynamic(s_handle, queries, 1.2, 6)
            tt2 = tier.submit_dynamic(t_handle, queries, 1.2, 6)
            single.flush()
            tier.flush()  # dispatch-time liveness check respawns + re-ships
            assert tier.stats.respawns == 1
            np.testing.assert_array_equal(st2.result()[0], tt2.result()[0])
            np.testing.assert_array_equal(st2.result()[1], tt2.result()[1])

    def test_unknown_handle_rejected_at_dispatch(self):
        with ShardedQueryService(num_workers=2) as tier:
            with pytest.raises(KeyError, match="dynamic"):
                tier.submit_dynamic("missing", np.zeros((1, 3)), 0.5, 4)
            with pytest.raises(KeyError, match="dynamic"):
                tier.update("missing", inserts=np.zeros((1, 3)))
            assert tier.pending == 0

    def test_malformed_update_fails_at_dispatch_not_on_worker(self, rng):
        with ShardedQueryService(num_workers=2) as tier:
            handle = tier.register_dynamic(rng.normal(size=(20, 3)))
            with pytest.raises(ValueError, match="out of range"):
                tier.update(handle, removes=np.array([500]))
            # The tier still serves: the bad frame never left the
            # dispatcher (its shadow rejected it).
            ticket = tier.submit_dynamic(handle, np.zeros((2, 3)), 0.5, 4)
            tier.flush()
            assert ticket.error is None
