"""Integration tests: full accelerator runs and baseline comparisons.

These pin the paper's headline *shapes*: Crescent beats Mesorasi, DensePoint
benefits most, GPU baselines cost far more energy, and approximation knobs
move cycles in the right direction.
"""

import numpy as np
import pytest

from repro.accel import (
    LayerSpec,
    NeighborSearchEngine,
    NetworkSpec,
    PointCloudAccelerator,
    evaluation_hardware,
    evaluation_networks,
    gpu_network_result,
    make_mesorasi,
    tigris_gpu_network_result,
    workload_points,
)
from repro.core import ApproxSetting


@pytest.fixture(scope="module")
def hw():
    return evaluation_hardware()


@pytest.fixture(scope="module")
def pnpp_runs(hw):
    spec = evaluation_networks()["PointNet++ (c)"]
    pts = workload_points("PointNet++ (c)")
    mesorasi = make_mesorasi(hw).run_network(spec, pts, ApproxSetting(0, None), seed=0)
    ans = PointCloudAccelerator(hw, NeighborSearchEngine(hw), False).run_network(
        spec, pts, ApproxSetting(4, None), seed=0
    )
    bce = PointCloudAccelerator(hw, NeighborSearchEngine(hw), True).run_network(
        spec, pts, ApproxSetting(4, 8), seed=0
    )
    return mesorasi, ans, bce


class TestSpecValidation:
    def test_layer_spec_validation(self):
        with pytest.raises(ValueError):
            LayerSpec("x", 0, 0.5, 8, (3, 16))
        with pytest.raises(ValueError):
            LayerSpec("x", 8, -1.0, 8, (3, 16))
        with pytest.raises(ValueError):
            LayerSpec("x", 8, 0.5, 8, (3,))

    def test_network_spec_needs_layers(self):
        with pytest.raises(ValueError):
            NetworkSpec("empty", ())

    def test_evaluation_suite_has_four_networks(self):
        nets = evaluation_networks()
        assert set(nets) == {
            "PointNet++ (c)",
            "PointNet++ (s)",
            "DensePoint",
            "F-PointNet",
        }


class TestCrescentVsMesorasi(object):
    def test_crescent_is_faster(self, pnpp_runs):
        mesorasi, ans, bce = pnpp_runs
        assert ans.cycles < mesorasi.cycles
        assert bce.cycles < ans.cycles or bce.cycles < mesorasi.cycles

    def test_crescent_saves_energy(self, pnpp_runs):
        mesorasi, ans, bce = pnpp_runs
        assert ans.energy.total < mesorasi.energy.total
        assert bce.energy.total < mesorasi.energy.total

    def test_search_speedup_exceeds_end_to_end(self, pnpp_runs):
        mesorasi, _, bce = pnpp_runs
        search_speedup = mesorasi.search_cycles / bce.search_cycles
        total_speedup = mesorasi.cycles / bce.cycles
        assert search_speedup > total_speedup  # Amdahl: MLP stage is shared

    def test_crescent_visits_fewer_nodes(self, pnpp_runs):
        mesorasi, ans, bce = pnpp_runs
        assert bce.nodes_visited < ans.nodes_visited < mesorasi.nodes_visited

    def test_aggregation_elision_speeds_aggregation(self, pnpp_runs):
        mesorasi, ans, bce = pnpp_runs
        assert bce.aggregation_cycles < mesorasi.aggregation_cycles
        # ANS changes the index matrix but not the service discipline, so
        # its aggregation time stays near the baseline's.
        assert ans.aggregation_cycles == pytest.approx(
            mesorasi.aggregation_cycles, rel=0.25
        )

    def test_layer_results_compose(self, pnpp_runs):
        mesorasi, _, _ = pnpp_runs
        assert mesorasi.cycles == sum(l.cycles for l in mesorasi.layers)
        assert mesorasi.energy.total == pytest.approx(
            sum(l.energy.total for l in mesorasi.layers)
        )


class TestDensePointDominance:
    def test_densepoint_has_largest_speedup(self, hw):
        speedups = {}
        for name, spec in evaluation_networks().items():
            pts = workload_points(name)
            base = make_mesorasi(hw).run_network(spec, pts, ApproxSetting(0, None))
            cres = PointCloudAccelerator(hw, NeighborSearchEngine(hw), True).run_network(
                spec, pts, ApproxSetting(4, 8)
            )
            speedups[name] = base.cycles / cres.cycles
        assert max(speedups, key=speedups.get) == "DensePoint"
        assert speedups["DensePoint"] > 2.0


class TestGpuBaselines:
    def test_gpu_much_more_energy(self, pnpp_runs):
        mesorasi, _, _ = pnpp_runs
        gpu_cycles, gpu_energy = gpu_network_result(mesorasi)
        assert gpu_energy > 10 * mesorasi.energy.total

    def test_tigris_gpu_between_gpu_and_mesorasi(self, pnpp_runs):
        mesorasi, _, _ = pnpp_runs
        _, gpu_energy = gpu_network_result(mesorasi)
        _, tg_energy = tigris_gpu_network_result(mesorasi)
        assert mesorasi.energy.total < tg_energy < gpu_energy

    def test_gpu_slower(self, pnpp_runs):
        mesorasi, _, _ = pnpp_runs
        gpu_cycles, _ = gpu_network_result(mesorasi)
        assert gpu_cycles > mesorasi.cycles


class TestKnobSensitivity:
    def test_more_pes_never_slower(self, hw):
        spec = evaluation_networks()["PointNet++ (c)"]
        pts = workload_points("PointNet++ (c)")
        cycles = []
        for pes in (2, 4, 8):
            cfg = hw.with_overrides(num_pes=pes)
            acc = PointCloudAccelerator(cfg, NeighborSearchEngine(cfg), True)
            cycles.append(acc.run_network(spec, pts, ApproxSetting(4, 8)).cycles)
        assert cycles[0] >= cycles[-1]

    def test_query_overflow_raises(self, hw):
        spec = NetworkSpec(
            "too-big", (LayerSpec("sa", 100, 0.5, 8, (3, 8)),)
        )
        acc = PointCloudAccelerator(hw, NeighborSearchEngine(hw), False)
        with pytest.raises(ValueError):
            acc.run_network(spec, np.zeros((50, 3)), ApproxSetting(0, None))


def _small_spec():
    return NetworkSpec(
        "mini",
        (
            LayerSpec("sa1", 64, 0.4, 8, (3, 16)),
            LayerSpec("sa2", 16, 0.8, 8, (16, 32)),
        ),
    )


class TestRunMany:
    def _fingerprint(self, result):
        return (
            result.cycles,
            result.search_cycles,
            result.aggregation_cycles,
            result.mlp_cycles,
            result.nodes_visited,
            pytest.approx(result.energy.total),
        )

    def test_grid_matches_individual_runs(self, hw, rng):
        spec = _small_spec()
        clouds = [rng.normal(size=(128, 3)) for _ in range(2)]
        settings = [ApproxSetting(0, None), ApproxSetting(2, None), ApproxSetting(2, 4)]
        acc = PointCloudAccelerator(hw, elide_aggregation=True)
        grid = acc.run_many(spec, clouds, settings, seed=1)
        assert len(grid) == len(settings)
        assert all(len(row) == len(clouds) for row in grid)
        fresh = PointCloudAccelerator(hw, elide_aggregation=True)
        for i, setting in enumerate(settings):
            for j, cloud in enumerate(clouds):
                single = fresh.run_network(spec, cloud, setting, seed=1)
                assert self._fingerprint(grid[i][j]) == self._fingerprint(single)

    def test_auto_runner_resolving_serial_keeps_engine_state(self, hw, rng):
        # An "auto" runner that won't actually pool (one worker) must take
        # the faithful in-process path: a custom engine's non-default
        # constructor state survives instead of being rebuilt as
        # type(engine)(hw).
        from repro.accel import ExhaustiveSplitSearchEngine
        from repro.runtime import SweepRunner

        spec = _small_spec()
        clouds = [rng.normal(size=(96, 3))]
        settings = [ApproxSetting(0, None)]
        engine = ExhaustiveSplitSearchEngine(hw, reload_on_full_queue=False)
        acc = PointCloudAccelerator(hw, engine, elide_aggregation=False)
        direct = acc.run_network(spec, clouds[0], settings[0])
        swept = acc.run_many(
            spec, clouds, settings, runner=SweepRunner(num_workers=1, backend="auto")
        )[0][0]
        assert self._fingerprint(swept) == self._fingerprint(direct)

    def test_process_backend_matches_serial(self, hw, rng):
        from repro.runtime import SweepRunner

        spec = _small_spec()
        clouds = [rng.normal(size=(96, 3))]
        settings = [ApproxSetting(0, None), ApproxSetting(2, 4)]
        acc = PointCloudAccelerator(hw, elide_aggregation=True)
        serial = acc.run_many(spec, clouds, settings)
        fanned = acc.run_many(
            spec, clouds, settings,
            runner=SweepRunner(num_workers=2, backend="process"),
        )
        for row_s, row_p in zip(serial, fanned):
            for a, b in zip(row_s, row_p):
                assert self._fingerprint(a) == self._fingerprint(b)


class TestSessionReuse:
    def test_session_pools_trees_across_settings(self, hw, rng):
        from repro.runtime import SearchSession

        spec = _small_spec()
        cloud = rng.normal(size=(128, 3))
        session = SearchSession()
        acc = PointCloudAccelerator(hw, session=session)
        acc.run_network(spec, cloud, ApproxSetting(2, None), seed=3)
        built_once = session.trees.stats.misses
        assert built_once > 0
        acc.run_network(spec, cloud, ApproxSetting(4, None), seed=3)
        # The second sweep point reuses every tree (same clouds, same
        # sampled centroids): no new construction.
        assert session.trees.stats.misses == built_once
        assert session.trees.stats.hits >= built_once

    def test_shared_session_results_identical(self, hw, rng):
        spec = _small_spec()
        cloud = rng.normal(size=(128, 3))
        shared = PointCloudAccelerator(hw)
        a = shared.run_network(spec, cloud, ApproxSetting(2, 4), seed=5)
        b = shared.run_network(spec, cloud, ApproxSetting(2, 4), seed=5)
        assert a.cycles == b.cycles
        assert a.energy.total == pytest.approx(b.energy.total)
