"""Tests for the energy model and breakdown accounting."""

import pytest

from repro.memsim import EnergyBreakdown, EnergyModel


class TestEnergyModel:
    def test_paper_ratios(self):
        em = EnergyModel()
        # Random : streaming DRAM ~ 3 : 1, random DRAM : SRAM = 25 : 1.
        assert em.dram_random_per_byte / em.dram_streaming_per_byte == pytest.approx(3.0, rel=0.01)
        assert em.dram_random_per_byte / em.sram_per_byte == pytest.approx(25.0)

    def test_linear_in_bytes(self):
        em = EnergyModel()
        assert em.sram(100) == 100 * em.sram_per_byte
        assert em.dram_streaming(10) + em.dram_streaming(20) == pytest.approx(
            em.dram_streaming(30)
        )

    def test_op_energies(self):
        em = EnergyModel()
        assert em.macs(4) == 4 * em.mac_op
        assert em.distances(2) == 2 * em.distance_op
        assert em.stack_ops(3) == 3 * em.stack_op


class TestEnergyBreakdown:
    def test_add_and_total(self):
        b = EnergyBreakdown()
        b.add("a", 10.0)
        b.add("a", 5.0)
        b.add("b", 1.0)
        assert b.components["a"] == 15.0
        assert b.total == 16.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            EnergyBreakdown().add("a", -1.0)

    def test_merge(self):
        a = EnergyBreakdown()
        a.add("x", 1.0)
        b = EnergyBreakdown()
        b.add("x", 2.0)
        b.add("y", 3.0)
        a.merge(b)
        assert a.components == {"x": 3.0, "y": 3.0}

    def test_fraction(self):
        b = EnergyBreakdown()
        b.add("x", 3.0)
        b.add("y", 1.0)
        assert b.fraction("x") == pytest.approx(0.75)
        assert b.fraction("missing") == 0.0

    def test_fraction_of_empty(self):
        assert EnergyBreakdown().fraction("x") == 0.0
