"""Per-rule fixtures for repro-lint + the repo self-check.

Every rule gets a known-bad fixture that must fire (proving the rule
actually detects its bug class) and a known-good fixture that must stay
silent (bounding false positives to the idioms the repo actually uses).
The final class asserts the repo itself lints clean — the merge gate the
CI lint lane enforces — and that every suppression pragma in ``src/``
carries a written reason.
"""

from pathlib import Path

import pytest

from repro.lint import ALL_RULES, all_rule_ids, lint_paths, scan_pragmas

REPO_ROOT = Path(__file__).resolve().parents[1]


def write(tmp_path: Path, name: str, text: str) -> Path:
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


def lint(tmp_path: Path):
    return lint_paths([tmp_path], ALL_RULES, known_rule_ids=all_rule_ids())


def rules_fired(report):
    return {f.rule for f in report.findings}


# ----------------------------------------------------------------------
# reference-freeze
# ----------------------------------------------------------------------

class TestReferenceFreeze:
    def _package(self, tmp_path):
        write(tmp_path, "pkg/__init__.py", "")
        write(tmp_path, "pkg/kdtree/__init__.py", "")
        write(tmp_path, "pkg/core/__init__.py", "")
        write(tmp_path, "pkg/runtime/__init__.py", "")

    def test_relative_import_of_lockstep_fires(self, tmp_path):
        self._package(tmp_path)
        write(
            tmp_path,
            "pkg/kdtree/traversal.py",
            "from ..runtime.lockstep import VectorizedLockstep\n",
        )
        assert "reference-freeze" in rules_fired(lint(tmp_path))

    def test_absolute_import_of_batched_fires(self, tmp_path):
        self._package(tmp_path)
        write(
            tmp_path,
            "pkg/core/approx_search.py",
            "import repro.runtime.batched\n",
        )
        assert "reference-freeze" in rules_fired(lint(tmp_path))

    def test_vectorized_topphase_symbol_fires(self, tmp_path):
        self._package(tmp_path)
        write(
            tmp_path,
            "pkg/kdtree/exact.py",
            "from ..runtime.topphase import vectorized_top_phase\n",
        )
        assert "reference-freeze" in rules_fired(lint(tmp_path))

    def test_function_level_import_fires_too(self, tmp_path):
        """The rule walks the whole tree, not just module top-level."""
        self._package(tmp_path)
        write(
            tmp_path,
            "pkg/runtime/topphase.py",
            "def helper():\n"
            "    from .lockstep import VectorizedLockstep\n"
            "    return VectorizedLockstep\n",
        )
        assert "reference-freeze" in rules_fired(lint(tmp_path))

    def test_reference_symbol_and_other_imports_allowed(self, tmp_path):
        self._package(tmp_path)
        write(
            tmp_path,
            "pkg/kdtree/exact.py",
            "import heapq\n"
            "import numpy as np\n"
            "from .build import KdTree\n"
            "from ..runtime.topphase import reference_top_phase\n",
        )
        assert lint(tmp_path).findings == []

    def test_non_frozen_module_may_import_engines(self, tmp_path):
        self._package(tmp_path)
        write(
            tmp_path,
            "pkg/runtime/session.py",
            "from .batched import BatchedBallQuery\n"
            "from .lockstep import VectorizedLockstep\n",
        )
        assert lint(tmp_path).findings == []

    def test_autograd_reference_importing_tape_fires(self, tmp_path):
        self._package(tmp_path)
        write(tmp_path, "pkg/nn/__init__.py", "")
        write(
            tmp_path,
            "pkg/nn/reference.py",
            "from . import tape\n",
        )
        assert "reference-freeze" in rules_fired(lint(tmp_path))

    def test_autograd_reference_importing_tensor_module_fires(self, tmp_path):
        self._package(tmp_path)
        write(tmp_path, "pkg/nn/__init__.py", "")
        write(
            tmp_path,
            "pkg/nn/reference.py",
            "def helper():\n"
            "    from .tensor import Tensor\n"
            "    return Tensor\n",
        )
        assert "reference-freeze" in rules_fired(lint(tmp_path))

    def test_autograd_reference_importing_production_tensor_fires(self, tmp_path):
        self._package(tmp_path)
        write(tmp_path, "pkg/nn/__init__.py", "")
        write(
            tmp_path,
            "pkg/nn/reference.py",
            "from ..nn import Tensor\n",
        )
        assert "reference-freeze" in rules_fired(lint(tmp_path))

    def test_autograd_reference_plain_numpy_allowed(self, tmp_path):
        self._package(tmp_path)
        write(tmp_path, "pkg/nn/__init__.py", "")
        write(
            tmp_path,
            "pkg/nn/reference.py",
            "import numpy as np\n"
            "from typing import Optional\n",
        )
        assert lint(tmp_path).findings == []

    def test_tensor_module_may_import_tape(self, tmp_path):
        """Only the reference is frozen; the production engine is not."""
        self._package(tmp_path)
        write(tmp_path, "pkg/nn/__init__.py", "")
        write(
            tmp_path,
            "pkg/nn/tensor.py",
            "from . import tape\n",
        )
        assert lint(tmp_path).findings == []

    # -- PR 9: the per-node tree builders join the freeze ---------------

    def test_reference_builder_importing_treebuild_fires(self, tmp_path):
        self._package(tmp_path)
        write(
            tmp_path,
            "pkg/kdtree/build.py",
            "from ..runtime.treebuild import vectorized_build_kdtree\n",
        )
        assert "reference-freeze" in rules_fired(lint(tmp_path))

    def test_split_tree_importing_treebuild_module_fires(self, tmp_path):
        self._package(tmp_path)
        write(
            tmp_path,
            "pkg/core/split_tree.py",
            "def helper():\n"
            "    import repro.runtime.treebuild\n"
            "    return repro.runtime.treebuild\n",
        )
        assert "reference-freeze" in rules_fired(lint(tmp_path))

    def test_split_tree_importing_vectorized_symbol_fires(self, tmp_path):
        self._package(tmp_path)
        write(
            tmp_path,
            "pkg/core/split_tree.py",
            "from ..runtime import VectorizedSplitTree\n",
        )
        assert "reference-freeze" in rules_fired(lint(tmp_path))

    def test_reference_builder_plain_numpy_allowed(self, tmp_path):
        self._package(tmp_path)
        write(
            tmp_path,
            "pkg/kdtree/build.py",
            "import numpy as np\n"
            "from dataclasses import dataclass\n",
        )
        write(
            tmp_path,
            "pkg/core/split_tree.py",
            "from ..kdtree.build import NODE_BYTES, KdTree\n",
        )
        assert lint(tmp_path).findings == []

    def test_treebuild_may_import_the_references(self, tmp_path):
        """The freeze is one-directional: the fast path builds ON the
        reference structures."""
        self._package(tmp_path)
        write(
            tmp_path,
            "pkg/runtime/treebuild.py",
            "from ..core.split_tree import SplitTree\n"
            "from ..kdtree.build import NODE_BYTES, KdTree\n",
        )
        assert lint(tmp_path).findings == []

    # -- PR 10: the rebuild-from-scratch dynamic parity path joins ------

    def test_dynamic_reference_importing_dynamic_module_fires(self, tmp_path):
        self._package(tmp_path)
        write(
            tmp_path,
            "pkg/kdtree/dynamic_reference.py",
            "from .dynamic import DynamicKdTree\n",
        )
        assert "reference-freeze" in rules_fired(lint(tmp_path))

    def test_dynamic_reference_importing_incremental_symbol_fires(self, tmp_path):
        self._package(tmp_path)
        write(
            tmp_path,
            "pkg/kdtree/dynamic_reference.py",
            "def helper():\n"
            "    from ..kdtree import DynamicKdTree\n"
            "    return DynamicKdTree\n",
        )
        assert "reference-freeze" in rules_fired(lint(tmp_path))

    def test_dynamic_reference_frozen_builders_allowed(self, tmp_path):
        """The scratch path is built FROM the frozen per-node builders."""
        self._package(tmp_path)
        write(
            tmp_path,
            "pkg/kdtree/dynamic_reference.py",
            "import numpy as np\n"
            "from .build import KdTree, build_kdtree\n"
            "from .exact import radius_search\n",
        )
        assert lint(tmp_path).findings == []

    def test_dynamic_overlay_may_import_its_reference(self, tmp_path):
        """One-directional again: the incremental fast path shares the
        canonical contract helpers that live beside the frozen path."""
        self._package(tmp_path)
        write(
            tmp_path,
            "pkg/kdtree/dynamic.py",
            "from .build import KdTree, build_kdtree\n"
            "from .dynamic_reference import canonical_pack, pair_d2\n",
        )
        assert lint(tmp_path).findings == []


# ----------------------------------------------------------------------
# cache-truthiness
# ----------------------------------------------------------------------

class TestCacheTruthiness:
    def test_if_test_fires(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "def f(tree_cache, key):\n"
            "    if tree_cache.get(key):\n"
            "        return 1\n",
        )
        assert "cache-truthiness" in rules_fired(lint(tmp_path))

    def test_or_chaining_fires(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "def f(session, key, build):\n"
            "    return session.results.get(key) or build()\n",
        )
        assert "cache-truthiness" in rules_fired(lint(tmp_path))

    def test_not_operand_fires(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "def f(lru, key):\n"
            "    while not lru.get(key):\n"
            "        pass\n",
        )
        assert "cache-truthiness" in rules_fired(lint(tmp_path))

    def test_sentinel_idiom_is_clean(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "_MISS = object()\n"
            "def f(cache, key, compute):\n"
            "    cached = cache.get(key, _MISS)\n"
            "    if cached is _MISS:\n"
            "        cached = compute()\n"
            "    return cached\n",
        )
        assert lint(tmp_path).findings == []

    def test_non_cache_receiver_not_flagged(self, tmp_path):
        """dict.get truthiness on non-cache names is out of scope."""
        write(
            tmp_path,
            "mod.py",
            "def f(params):\n"
            "    if params.get('verbose'):\n"
            "        return 1\n",
        )
        assert lint(tmp_path).findings == []


# ----------------------------------------------------------------------
# shared-default-rng
# ----------------------------------------------------------------------

class TestSharedDefaultRng:
    def test_constant_seed_in_init_fires(self, tmp_path):
        write(
            tmp_path,
            "nn/layers.py",
            "import numpy as np\n"
            "class Dropout:\n"
            "    def __init__(self, p=0.5, rng=None):\n"
            "        if rng is None:\n"
            "            rng = np.random.default_rng(0)\n"
            "        self.rng = rng\n",
        )
        assert "shared-default-rng" in rules_fired(lint(tmp_path))

    def test_constant_seed_as_parameter_default_fires(self, tmp_path):
        write(
            tmp_path,
            "models/net.py",
            "import numpy as np\n"
            "def make_net(rng=np.random.default_rng(0)):\n"
            "    return rng\n",
        )
        assert "shared-default-rng" in rules_fired(lint(tmp_path))

    def test_constant_seed_in_class_body_fires(self, tmp_path):
        write(
            tmp_path,
            "nn/init.py",
            "import numpy as np\n"
            "class Init:\n"
            "    rng = np.random.default_rng(42)\n",
        )
        assert "shared-default-rng" in rules_fired(lint(tmp_path))

    def test_spawned_stream_is_clean(self, tmp_path):
        """The PR 5 fix shape: spawn from a module-level SeedSequence."""
        write(
            tmp_path,
            "nn/layers.py",
            "import numpy as np\n"
            "_SEEDS = np.random.SeedSequence(0)\n"
            "class Dropout:\n"
            "    def __init__(self, rng=None):\n"
            "        if rng is None:\n"
            "            rng = np.random.default_rng(_SEEDS.spawn(1)[0])\n"
            "        self.rng = rng\n",
        )
        assert lint(tmp_path).findings == []

    def test_outside_nn_models_not_flagged(self, tmp_path):
        """Figure drivers may seed constants freely (one instance each)."""
        write(
            tmp_path,
            "analysis/cli.py",
            "import numpy as np\n"
            "class Driver:\n"
            "    def __init__(self):\n"
            "        self.rng = np.random.default_rng(1)\n",
        )
        assert lint(tmp_path).findings == []


# ----------------------------------------------------------------------
# asyncio-discipline
# ----------------------------------------------------------------------

class TestAsyncioDiscipline:
    def test_time_sleep_in_async_fires(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "import time\n"
            "async def run():\n"
            "    time.sleep(1)\n",
        )
        assert "asyncio-discipline" in rules_fired(lint(tmp_path))

    def test_blocking_queue_get_fires(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "async def run(inbox):\n"
            "    return inbox.get(timeout=1)\n",
        )
        assert "asyncio-discipline" in rules_fired(lint(tmp_path))

    def test_unawaited_wait_fires(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "async def run(event):\n"
            "    event.wait()\n",
        )
        assert "asyncio-discipline" in rules_fired(lint(tmp_path))

    def test_clear_then_await_wait_fires(self, tmp_path):
        """The PR 6 lost-wakeup shape."""
        write(
            tmp_path,
            "mod.py",
            "async def run(self):\n"
            "    while True:\n"
            "        self._wake.clear()\n"
            "        await self._wake.wait()\n",
        )
        report = lint(tmp_path)
        assert "asyncio-discipline" in rules_fired(report)
        assert any("lost-wakeup" in f.message for f in report.findings)

    def test_wait_then_clear_is_clean(self, tmp_path):
        """The fixed frontend shape: wait first, clear *after* the wakeup.

        Note the work statement between ``clear()`` and the next awaited
        ``wait()`` — the rule only flags the immediately-adjacent re-park,
        because with work in between the clear is consuming the wakeup it
        just received, not racing a future one.
        """
        write(
            tmp_path,
            "mod.py",
            "import asyncio\n"
            "async def run(self):\n"
            "    while True:\n"
            "        await self._wake.wait()\n"
            "        self._wake.clear()\n"
            "        if not self._waiters:\n"
            "            continue\n"
            "        try:\n"
            "            await asyncio.wait_for(self._wake.wait(), 0.1)\n"
            "        except asyncio.TimeoutError:\n"
            "            pass\n"
            "        self._wake.clear()\n",
        )
        assert lint(tmp_path).findings == []

    def test_awaited_primitives_are_clean(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "import asyncio\n"
            "async def run(queue):\n"
            "    await asyncio.sleep(0)\n"
            "    return await queue.get()\n",
        )
        assert lint(tmp_path).findings == []

    def test_sync_function_untouched(self, tmp_path):
        """Blocking calls in sync code (worker threads) are legitimate."""
        write(
            tmp_path,
            "mod.py",
            "import time\n"
            "def beat(stop, interval):\n"
            "    while not stop.wait(interval):\n"
            "        time.sleep(0)\n",
        )
        assert lint(tmp_path).findings == []


# ----------------------------------------------------------------------
# wall-clock-injection
# ----------------------------------------------------------------------

class TestWallClockInjection:
    def test_direct_call_in_serve_fires(self, tmp_path):
        write(
            tmp_path,
            "serve/mod.py",
            "import time\n"
            "def measure():\n"
            "    return time.perf_counter()\n",
        )
        assert "wall-clock-injection" in rules_fired(lint(tmp_path))

    def test_direct_call_in_runtime_fires(self, tmp_path):
        write(
            tmp_path,
            "runtime/mod.py",
            "import time\n"
            "def stamp(self):\n"
            "    self.started_at = time.monotonic()\n",
        )
        assert "wall-clock-injection" in rules_fired(lint(tmp_path))

    def test_injectable_default_is_clean(self, tmp_path):
        """clock=time.perf_counter in a default is a reference, not a call."""
        write(
            tmp_path,
            "serve/mod.py",
            "import time\n"
            "class Service:\n"
            "    def __init__(self, clock=time.perf_counter):\n"
            "        self._clock = clock\n"
            "    def stamp(self):\n"
            "        return self._clock()\n",
        )
        assert lint(tmp_path).findings == []

    def test_none_fallback_for_injectable_param_is_clean(self, tmp_path):
        write(
            tmp_path,
            "runtime/mod.py",
            "import time\n"
            "def age(beat, now=None):\n"
            "    now = time.monotonic() if now is None else now\n"
            "    if now is None:\n"
            "        now = time.monotonic()\n"
            "    return now - beat\n",
        )
        assert lint(tmp_path).findings == []

    def test_outside_serve_runtime_not_flagged(self, tmp_path):
        write(
            tmp_path,
            "analysis/mod.py",
            "import time\n"
            "def measure():\n"
            "    return time.perf_counter()\n",
        )
        assert lint(tmp_path).findings == []


# ----------------------------------------------------------------------
# finite-input-validation
# ----------------------------------------------------------------------

class TestFiniteInputValidation:
    def test_unvalidated_array_use_fires(self, tmp_path):
        write(
            tmp_path,
            "serve/api.py",
            "import numpy as np\n"
            "def query(points, queries, radius):\n"
            "    pts = np.asarray(points)\n"
            "    return pts\n",
        )
        report = lint(tmp_path)
        assert "finite-input-validation" in rules_fired(report)

    def test_validate_before_use_is_clean(self, tmp_path):
        write(
            tmp_path,
            "serve/api.py",
            "import numpy as np\n"
            "from .service import validate_points, validate_queries, validate_settings\n"
            "def query(points, queries, radius, max_neighbors):\n"
            "    validate_settings(radius, max_neighbors)\n"
            "    points = validate_points(points)\n"
            "    queries = validate_queries(queries)\n"
            "    return np.concatenate([points, queries])\n",
        )
        assert lint(tmp_path).findings == []

    def test_forwarding_to_checked_entry_point_is_clean(self, tmp_path):
        write(
            tmp_path,
            "serve/api.py",
            "class Frontend:\n"
            "    def submit(self, points, queries, radius, max_neighbors):\n"
            "        return self.service.submit(points, queries, radius, max_neighbors)\n",
        )
        assert lint(tmp_path).findings == []

    def test_private_helpers_exempt(self, tmp_path):
        write(
            tmp_path,
            "serve/api.py",
            "import numpy as np\n"
            "def _helper(points):\n"
            "    return np.asarray(points)\n"
            "class _Internal:\n"
            "    def consume(self, points):\n"
            "        return np.asarray(points)\n",
        )
        assert lint(tmp_path).findings == []

    def test_outside_serve_not_flagged(self, tmp_path):
        write(
            tmp_path,
            "runtime/api.py",
            "import numpy as np\n"
            "def query(points, radius):\n"
            "    return np.asarray(points) * radius\n",
        )
        assert lint(tmp_path).findings == []


# ----------------------------------------------------------------------
# broad-except (warn-only)
# ----------------------------------------------------------------------

class TestBroadExcept:
    def test_except_exception_warns(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "try:\n    x = 1\nexcept Exception:\n    pass\n",
        )
        report = lint(tmp_path)
        assert "broad-except" in rules_fired(report)
        assert report.warnings == 1
        assert report.errors == 0
        assert report.ok  # warn-only: the build does not fail

    def test_bare_except_warns(self, tmp_path):
        write(tmp_path, "mod.py", "try:\n    x = 1\nexcept:\n    pass\n")
        assert "broad-except" in rules_fired(lint(tmp_path))

    def test_narrow_catch_is_clean(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "try:\n    x = 1\nexcept (OSError, ValueError):\n    pass\n",
        )
        assert lint(tmp_path).findings == []

    def test_justified_pragma_silences(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "try:\n"
            "    x = 1\n"
            "except Exception:  # repro: allow[broad-except] -- error containment boundary\n"
            "    pass\n",
        )
        assert lint(tmp_path).findings == []


# ----------------------------------------------------------------------
# The merge gate: the repo itself lints clean
# ----------------------------------------------------------------------

class TestRepoIsClean:
    def test_src_lints_clean(self):
        report = lint_paths(
            [REPO_ROOT / "src"], ALL_RULES, known_rule_ids=all_rule_ids()
        )
        assert report.files_checked > 70
        problems = "\n".join(f.format() for f in report.findings)
        assert report.errors == 0, f"repro-lint errors on src/:\n{problems}"
        assert report.warnings == 0, f"repro-lint warnings on src/:\n{problems}"

    def test_every_pragma_in_src_has_a_reason(self):
        missing = []
        for path in sorted((REPO_ROOT / "src").rglob("*.py")):
            for pragma in scan_pragmas(path.read_text(encoding="utf-8")):
                if pragma.problem or not pragma.reason:
                    missing.append(f"{path}:{pragma.line}")
        assert not missing, f"pragmas without a written reason: {missing}"

    def test_rule_count_matches_contract(self):
        """The ISSUE promised ~6 bug-history rules plus the warn-only stub."""
        ids = {rule.id for rule in ALL_RULES}
        assert ids == {
            "reference-freeze",
            "cache-truthiness",
            "shared-default-rng",
            "asyncio-discipline",
            "wall-clock-injection",
            "finite-input-validation",
            "broad-except",
        }
