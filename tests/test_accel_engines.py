"""Tests for the search engine, aggregation unit, and exhaustive baseline."""

import numpy as np
import pytest

from repro.accel import (
    AggregationUnit,
    ExhaustiveSplitSearchEngine,
    NeighborSearchEngine,
    evaluation_hardware,
)
from repro.core import ApproxSetting, CrescentHardwareConfig
from repro.kdtree import ball_query, build_kdtree


def problem(n=512, m=64, seed=0):
    rng = np.random.default_rng(seed)
    pts = rng.normal(size=(n, 3))
    queries = pts[rng.choice(n, m, replace=False)]
    return pts, queries, build_kdtree(pts)


class TestNeighborSearchEngine:
    def test_exact_setting_matches_ball_query(self):
        pts, queries, tree = problem()
        engine = NeighborSearchEngine()
        idx, cnt, res = engine.run(tree, queries, 0.5, 8, ApproxSetting(0, None))
        want_idx, want_cnt = ball_query(tree, queries, 0.5, 8)
        assert np.array_equal(cnt, want_cnt)

    def test_cycles_positive_and_decomposed(self):
        pts, queries, tree = problem(seed=1)
        engine = NeighborSearchEngine()
        _, _, res = engine.run(tree, queries, 0.5, 8, ApproxSetting(3, 5))
        assert res.cycles >= max(res.compute_cycles, res.dram_cycles) - 1
        assert res.compute_cycles == res.top_phase_cycles + res.sub_phase_cycles
        assert res.top_phase_cycles > 0

    def test_dram_fully_streaming(self):
        pts, queries, tree = problem(seed=2)
        engine = NeighborSearchEngine()
        _, _, res = engine.run(tree, queries, 0.5, 8, ApproxSetting(3, None))
        assert res.dram.random_bytes == 0
        assert res.dram.streaming_bytes > 0

    def test_approximation_reduces_cycles(self):
        pts, queries, tree = problem(n=2048, m=256, seed=3)
        engine = NeighborSearchEngine()
        _, _, exact = engine.run(tree, queries, 0.4, 16, ApproxSetting(0, None))
        _, _, approx = engine.run(tree, queries, 0.4, 16, ApproxSetting(4, 6))
        assert approx.compute_cycles < exact.compute_cycles

    def test_energy_components_present(self):
        pts, queries, tree = problem(seed=4)
        engine = NeighborSearchEngine()
        _, _, res = engine.run(tree, queries, 0.5, 8, ApproxSetting(2, None))
        for key in ("dram_streaming", "sram_search", "search_datapath"):
            assert res.energy.components.get(key, 0) > 0


class TestAggregationUnit:
    def test_elide_faster_than_stall(self):
        rng = np.random.default_rng(0)
        indices = rng.integers(0, 512, size=(128, 16))
        unit = AggregationUnit()
        stall = unit.run(indices, num_points=512, elide=False)
        elide = unit.run(indices, num_points=512, elide=True)
        assert elide.cycles < stall.cycles
        assert np.array_equal(stall.effective_indices, indices)
        assert not np.array_equal(elide.effective_indices, indices)

    def test_elide_replaces_within_row(self):
        rng = np.random.default_rng(1)
        indices = rng.integers(0, 512, size=(64, 16))
        res = AggregationUnit().run(indices, num_points=512, elide=True)
        for i in range(64):
            assert set(res.effective_indices[i]) <= set(indices[i])

    def test_stall_counts_conflicts(self):
        # Same bank, distinct ids: 16 distinct addresses fully serialize.
        indices = np.tile(np.arange(16) * 16, (10, 1))  # all bank 0
        res = AggregationUnit().run(indices, num_points=300, elide=False)
        assert res.sram.conflicted == 10 * 15
        assert res.cycles == 10 * 16  # fully serialized
        assert res.sram.reads_served == 10 * 16

    def test_stall_broadcasts_duplicate_ids(self):
        # Same *id* on every port: one broadcast read serves the group in
        # a single cycle — no conflicts, no extra read energy.
        indices = np.full((10, 16), 3)
        res = AggregationUnit().run(indices, num_points=100, elide=False)
        assert res.sram.conflicted == 0
        assert res.sram.broadcasts == 10 * 15
        assert res.sram.reads_served == 10
        assert res.cycles == 10

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            AggregationUnit().run(np.zeros(4, dtype=int), 10, elide=False)

    def test_dram_streams_points_once(self):
        indices = np.zeros((4, 8), dtype=int)
        res = AggregationUnit().run(indices, num_points=100, elide=True)
        assert res.dram.streaming_bytes == 100 * 16


class TestExhaustiveEngine:
    def test_finds_all_in_subtree_neighbors(self):
        pts, queries, tree = problem(n=256, m=32, seed=5)
        engine = ExhaustiveSplitSearchEngine()
        idx, cnt, res = engine.run(tree, queries, 0.5, 16, ApproxSetting(0, None))
        # Exhaustive sub-tree search is at least as complete as Crescent's
        # K-d sub-tree search under the same split.
        assert (cnt > 0).any()
        assert res.report.traversal.nodes_visited > 0

    def test_visits_more_nodes_than_crescent(self):
        pts, queries, tree = problem(n=2048, m=256, seed=6)
        ex = ExhaustiveSplitSearchEngine()
        cres = NeighborSearchEngine()
        _, _, ex_res = ex.run(tree, queries, 0.4, 16, ApproxSetting(0, None))
        _, _, cres_res = cres.run(tree, queries, 0.4, 16, ApproxSetting(4, None))
        assert (
            ex_res.report.traversal.nodes_visited
            > cres_res.report.traversal.nodes_visited
        )

    def test_reload_increases_dram(self):
        hw = evaluation_hardware()
        pts, queries, tree = problem(n=2048, m=2048, seed=7)
        reload_engine = ExhaustiveSplitSearchEngine(hw, reload_on_full_queue=True)
        staged_engine = ExhaustiveSplitSearchEngine(hw, reload_on_full_queue=False)
        _, _, with_reload = reload_engine.run(tree, queries, 0.4, 16, ApproxSetting())
        _, _, staged = staged_engine.run(tree, queries, 0.4, 16, ApproxSetting())
        assert with_reload.dram.total_bytes > staged.dram.total_bytes

    def test_results_deterministic(self):
        pts, queries, tree = problem(seed=8)
        engine = ExhaustiveSplitSearchEngine()
        a = engine.run(tree, queries, 0.5, 8, ApproxSetting())
        b = engine.run(tree, queries, 0.5, 8, ApproxSetting())
        assert np.array_equal(a[0], b[0])
