"""Property-based tests for loss functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, huber_loss, log_softmax, mse_loss, softmax_cross_entropy

SETTINGS = dict(max_examples=30, deadline=None)


@settings(**SETTINGS)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_log_softmax_is_shift_invariant(seed):
    rng = np.random.default_rng(seed)
    logits = rng.normal(size=(4, 6))
    shift = rng.normal()
    a = log_softmax(Tensor(logits)).data
    b = log_softmax(Tensor(logits + shift)).data
    assert np.allclose(a, b)


@settings(**SETTINGS)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_cross_entropy_nonnegative_and_grad_sums_to_zero(seed):
    rng = np.random.default_rng(seed)
    logits = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
    labels = rng.integers(0, 4, size=5)
    loss = softmax_cross_entropy(logits, labels)
    assert loss.item() >= 0.0
    loss.backward()
    # d(CE)/d(logits) = softmax - onehot: rows sum to zero.
    assert np.allclose(logits.grad.sum(axis=-1), 0.0, atol=1e-9)


@settings(**SETTINGS)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_cross_entropy_minimized_at_correct_label(seed):
    rng = np.random.default_rng(seed)
    base = rng.normal(size=(1, 5))
    label = np.array([int(rng.integers(5))])
    correct = base.copy()
    correct[0, label[0]] += 5.0
    wrong = base.copy()
    wrong[0, (label[0] + 1) % 5] += 5.0
    assert (
        softmax_cross_entropy(Tensor(correct), label).item()
        < softmax_cross_entropy(Tensor(wrong), label).item()
    )


@settings(**SETTINGS)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    delta=st.floats(min_value=0.2, max_value=3.0),
)
def test_huber_bounded_by_mse_and_linear(seed, delta):
    rng = np.random.default_rng(seed)
    pred = rng.normal(scale=3.0, size=6)
    target = rng.normal(scale=3.0, size=6)
    h = huber_loss(Tensor(pred), target, delta=delta).item()
    half_mse = 0.5 * mse_loss(Tensor(pred), target).item()
    # Huber never exceeds the quadratic loss.
    assert h <= half_mse + 1e-9
    assert h >= 0.0


@settings(**SETTINGS)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_huber_gradient_is_clipped(seed):
    rng = np.random.default_rng(seed)
    pred = Tensor(rng.normal(scale=10.0, size=4), requires_grad=True)
    target = np.zeros(4)
    huber_loss(pred, target, delta=1.0).backward()
    # Gradient magnitude per element is at most delta / n (mean reduction).
    assert np.abs(pred.grad).max() <= 1.0 / 4 + 1e-9
