"""Engine-level tests for repro-lint: pragmas, CLI, formats, exit codes.

The per-rule good/bad fixtures live in ``tests/test_lint_rules.py``; this
file pins the machinery those rules ride on — suppression semantics, the
JSON schema, ``--list-rules``, and the process exit contract CI depends
on.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import ALL_RULES, all_rule_ids, lint_paths, scan_pragmas
from repro.lint.cli import main
from repro.lint.engine import module_name_for

REPO_ROOT = Path(__file__).resolve().parents[1]

# A file that trips cache-truthiness: one finding, one known line.
BAD_CACHE = """\
def lookup(cache, key):
    if cache.get(key):
        return True
    return False
"""


def write(tmp_path: Path, name: str, text: str) -> Path:
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


def run_lint(tmp_path: Path):
    return lint_paths([tmp_path], ALL_RULES, known_rule_ids=all_rule_ids())


# ----------------------------------------------------------------------
# Pragma semantics
# ----------------------------------------------------------------------

class TestPragmas:
    def test_trailing_pragma_suppresses_same_line(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "def lookup(cache, key):\n"
            "    if cache.get(key):  # repro: allow[cache-truthiness] -- test fixture\n"
            "        return True\n",
        )
        report = run_lint(tmp_path)
        assert report.findings == []
        assert report.ok

    def test_standalone_pragma_suppresses_next_line(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "def lookup(cache, key):\n"
            "    # repro: allow[cache-truthiness] -- test fixture\n"
            "    if cache.get(key):\n"
            "        return True\n",
        )
        report = run_lint(tmp_path)
        assert report.findings == []

    def test_pragma_on_wrong_line_does_not_suppress(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "# repro: allow[cache-truthiness] -- too far away\n"
            "def lookup(cache, key):\n"
            "    if cache.get(key):\n"
            "        return True\n",
        )
        report = run_lint(tmp_path)
        rules = {f.rule for f in report.findings}
        # The real finding survives AND the pragma is reported as expired.
        assert "cache-truthiness" in rules
        assert "unused-pragma" in rules

    def test_pragma_without_reason_is_an_error(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "def lookup(cache, key):\n"
            "    if cache.get(key):  # repro: allow[cache-truthiness]\n"
            "        return True\n",
        )
        report = run_lint(tmp_path)
        rules = {f.rule for f in report.findings}
        # No reason => invalid => does not suppress, and is itself flagged.
        assert "bad-pragma" in rules
        assert "cache-truthiness" in rules
        assert not report.ok

    def test_expired_pragma_is_an_error(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "x = 1  # repro: allow[cache-truthiness] -- nothing here anymore\n",
        )
        report = run_lint(tmp_path)
        assert [f.rule for f in report.findings] == ["unused-pragma"]
        assert not report.ok

    def test_unknown_rule_id_is_flagged(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "x = 1  # repro: allow[no-such-rule] -- typo\n",
        )
        report = run_lint(tmp_path)
        assert "unknown-rule" in {f.rule for f in report.findings}

    def test_comma_separated_ids(self, tmp_path):
        write(
            tmp_path,
            "serve/mod.py",
            "def lookup(cache, key):\n"
            "    if cache.get(key):  # repro: allow[cache-truthiness, broad-except] -- only one fires\n"
            "        return True\n",
        )
        report = run_lint(tmp_path)
        # cache-truthiness suppressed; the pragma as a whole was used, so
        # the extra id does not make it "unused".
        assert report.findings == []

    def test_pragma_in_docstring_is_inert(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            '"""Docs showing # repro: allow[cache-truthiness] -- an example."""\n'
            "x = 1\n",
        )
        report = run_lint(tmp_path)
        assert report.findings == []

    def test_scan_pragmas_parses_fields(self):
        pragmas = scan_pragmas(
            "x = 1  # repro: allow[reference-freeze] -- because reasons\n"
        )
        assert len(pragmas) == 1
        p = pragmas[0]
        assert p.rule_ids == ("reference-freeze",)
        assert p.reason == "because reasons"
        assert not p.standalone
        assert p.target_line == 1
        assert p.problem == ""

    def test_malformed_pragma_like_comment_is_flagged(self, tmp_path):
        write(tmp_path, "mod.py", "x = 1  # repro: allwo[oops]\n")
        report = run_lint(tmp_path)
        assert "bad-pragma" in {f.rule for f in report.findings}


# ----------------------------------------------------------------------
# Engine mechanics
# ----------------------------------------------------------------------

class TestEngine:
    def test_syntax_error_becomes_parse_error_finding(self, tmp_path):
        write(tmp_path, "broken.py", "def nope(:\n")
        report = run_lint(tmp_path)
        assert [f.rule for f in report.findings] == ["parse-error"]
        assert not report.ok

    def test_pycache_and_hidden_dirs_skipped(self, tmp_path):
        write(tmp_path, "__pycache__/junk.py", "def nope(:\n")
        write(tmp_path, ".hidden/junk.py", "def nope(:\n")
        write(tmp_path, "ok.py", "x = 1\n")
        report = run_lint(tmp_path)
        assert report.files_checked == 1
        assert report.findings == []

    def test_findings_carry_file_and_line(self, tmp_path):
        path = write(tmp_path, "mod.py", BAD_CACHE)
        report = run_lint(tmp_path)
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.path == str(path)
        assert finding.line == 2
        assert finding.rule == "cache-truthiness"

    def test_module_name_resolution(self, tmp_path):
        write(tmp_path, "pkg/__init__.py", "")
        write(tmp_path, "pkg/sub/__init__.py", "")
        leaf = write(tmp_path, "pkg/sub/mod.py", "x = 1\n")
        assert module_name_for(leaf) == "pkg.sub.mod"
        assert module_name_for(tmp_path / "pkg" / "sub" / "__init__.py") == "pkg.sub"


# ----------------------------------------------------------------------
# CLI: formats, exit codes, --list-rules
# ----------------------------------------------------------------------

class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        write(tmp_path, "ok.py", "x = 1\n")
        assert main([str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_exit_nonzero_on_findings(self, tmp_path, capsys):
        write(tmp_path, "mod.py", BAD_CACHE)
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "[cache-truthiness]" in out
        assert "mod.py:2" in out

    def test_warnings_do_not_fail_the_run(self, tmp_path, capsys):
        write(
            tmp_path,
            "mod.py",
            "try:\n    x = 1\nexcept Exception:\n    pass\n",
        )
        assert main([str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "broad-except" in out
        assert "1 warning(s)" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_json_schema(self, tmp_path, capsys):
        write(tmp_path, "mod.py", BAD_CACHE)
        assert main([str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["files_checked"] == 1
        assert payload["errors"] == 1
        assert payload["warnings"] == 0
        (finding,) = payload["findings"]
        assert set(finding) == {"rule", "path", "line", "message", "severity"}
        assert finding["rule"] == "cache-truthiness"
        assert finding["line"] == 2
        assert finding["severity"] == "error"

    def test_list_rules_names_every_rule(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in all_rule_ids():
            assert rule_id in out

    def test_list_rules_json(self, capsys):
        assert main(["--list-rules", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        listed = {entry["id"] for entry in payload["rules"]}
        assert listed == set(all_rule_ids())
        for entry in payload["rules"]:
            assert set(entry) == {"id", "severity", "description", "motivation"}

    def test_module_invocation_exit_codes(self, tmp_path):
        """`python -m repro.lint` works end to end, as CI runs it."""
        write(tmp_path, "mod.py", BAD_CACHE)
        env_src = str(REPO_ROOT / "src")
        bad = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(tmp_path)],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
        )
        assert bad.returncode == 1
        assert "cache-truthiness" in bad.stdout
        good = subprocess.run(
            [sys.executable, "-m", "repro.lint", "--list-rules"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
        )
        assert good.returncode == 0
