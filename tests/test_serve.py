"""Serving-layer parity and behavior suite.

The coalescing service exists purely to batch *other callers'* requests,
so its one hard contract is bit-identity: every result a merged sweep
demuxes must equal the result of serving that request alone through
:meth:`repro.runtime.BatchedBallQuery.query`.  The randomized suite here
pins that across mixed radii, mixed K, duplicate clouds, and interleaved
distinct clouds, plus the new runtime pieces underneath (the merged
sweep's validation, the vectorized nearest-node pass, the relocated
DFS-rank depth guard) and the asyncio front-end's batching behavior
(micro-batch window, max-batch cut-off, backpressure, graceful drain).
"""

import asyncio

import numpy as np
import pytest

from repro.kdtree import build_kdtree
from repro.kdtree.build import KdTree
from repro.kdtree.exact import ball_query, knn_search
from repro.runtime import BatchedBallQuery, batched_nearest_node, frontier_sweep
from repro.serve import AsyncQueryFrontend, QueryService, replay_trace, synthetic_trace

RADII = (0.1, 0.2, 0.35, 0.6)
KS = (1, 4, 8, 16)


def random_requests(rng, clouds, n_requests, max_queries=40, far_fraction=0.15):
    """Draw ``(points, queries, radius, K)`` requests over ``clouds``."""
    requests = []
    for _ in range(n_requests):
        cloud = clouds[int(rng.integers(len(clouds)))]
        m = int(rng.integers(1, max_queries))
        queries = cloud[rng.integers(0, len(cloud), size=m)] + rng.normal(
            scale=0.05, size=(m, 3)
        )
        if rng.random() < far_fraction:
            queries = queries + 50.0  # empty neighborhoods
        requests.append(
            (cloud, queries, float(rng.choice(RADII)), int(rng.choice(KS)))
        )
    return requests


def assert_request_parity(requests, results):
    """Every served result equals the request served alone."""
    for (points, queries, radius, k), (got_idx, got_cnt) in zip(requests, results):
        engine = BatchedBallQuery(build_kdtree(points))
        want_idx, want_cnt = engine.query(queries, radius, k)
        np.testing.assert_array_equal(got_idx, want_idx)
        np.testing.assert_array_equal(got_cnt, want_cnt)


def linear_chain_tree(n):
    """A malformed degenerate tree: one right-spine chain of ``n`` nodes."""
    pts = np.stack(
        [np.arange(n, dtype=float), np.zeros(n), np.zeros(n)], axis=1
    )
    return KdTree(
        points=pts,
        point_id=np.arange(n, dtype=np.int64),
        split_dim=np.zeros(n, dtype=np.int8),
        left=np.full(n, -1, dtype=np.int64),
        right=np.concatenate([np.arange(1, n), [-1]]).astype(np.int64),
        depth=np.arange(n, dtype=np.int32),
        subtree_size=(n - np.arange(n)).astype(np.int64),
    )


class TestMergedSweep:
    def test_mixed_radius_and_k_same_cloud(self, rng):
        pts = rng.normal(size=(400, 3))
        engine = BatchedBallQuery(build_kdtree(pts))
        requests = [
            (pts[rng.integers(0, 400, size=int(rng.integers(1, 30)))], r, k)
            for r, k in [(0.1, 4), (0.35, 16), (0.2, 1), (0.6, 8), (0.1, 16)]
        ]
        queries = np.concatenate([q for q, _, _ in requests])
        radii = np.concatenate(
            [np.full(len(q), r) for q, r, _ in requests]
        )
        rid = np.repeat(np.arange(len(requests)), [len(q) for q, _, _ in requests])
        ks = [k for _, _, k in requests]
        merged = engine.query_merged(queries, radii, rid, ks)
        for (q, r, k), (got_idx, got_cnt) in zip(requests, merged):
            want_idx, want_cnt = engine.query(q, r, k)
            np.testing.assert_array_equal(got_idx, want_idx)
            np.testing.assert_array_equal(got_cnt, want_cnt)

    def test_many_seeds(self, test_seed):
        # Independent randomized draws so one lucky geometry can't hide
        # a demux bug.
        for offset in range(8):
            rng = np.random.default_rng(test_seed + offset)
            pts = rng.normal(size=(int(rng.integers(2, 400)), 3))
            engine = BatchedBallQuery(build_kdtree(pts))
            n_req = int(rng.integers(1, 9))
            qs, radii, ks = [], [], []
            for _ in range(n_req):
                m = int(rng.integers(0, 40))  # zero-query requests included
                q = rng.normal(size=(m, 3)) * rng.uniform(0.3, 1.5)
                if rng.random() < 0.2:
                    q = q + 50.0
                qs.append(q)
                radii.append(float(rng.uniform(0.05, 0.8)))
                ks.append(int(rng.integers(1, 24)))
            queries = (
                np.concatenate(qs) if sum(len(q) for q in qs) else np.empty((0, 3))
            )
            per_row_radii = np.concatenate(
                [np.full(len(q), r) for q, r in zip(qs, radii)]
            )
            rid = np.repeat(np.arange(n_req), [len(q) for q in qs])
            merged = engine.query_merged(queries, per_row_radii, rid, ks)
            assert len(merged) == n_req
            for q, r, k, (got_idx, got_cnt) in zip(qs, radii, ks, merged):
                want_idx, want_cnt = engine.query(q, r, k)
                np.testing.assert_array_equal(got_idx, want_idx)
                np.testing.assert_array_equal(got_cnt, want_cnt)
                assert got_idx.shape == (len(q), k)

    def test_heterogeneous_radii_within_request(self, rng):
        # Per-query radii are row-independent: each row equals its own
        # single-query call.
        pts = rng.normal(size=(300, 3))
        engine = BatchedBallQuery(build_kdtree(pts))
        queries = pts[:20]
        radii = rng.uniform(0.05, 0.5, size=20)
        (got_idx, got_cnt), = engine.query_merged(
            queries, radii, np.zeros(20, dtype=int), [8]
        )
        for i in range(20):
            want_idx, want_cnt = engine.query(queries[i], float(radii[i]), 8)
            np.testing.assert_array_equal(got_idx[i : i + 1], want_idx)
            np.testing.assert_array_equal(got_cnt[i : i + 1], want_cnt)

    def test_density_guard_fallback_stays_identical(self, rng, monkeypatch):
        from repro.runtime import batched as batched_mod

        monkeypatch.setattr(batched_mod, "_MAX_BUFFERED_HITS", 10)
        pts = rng.normal(size=(200, 3)) * 0.2  # dense: the guard trips
        engine = BatchedBallQuery(build_kdtree(pts))
        queries = np.concatenate([pts[:10], pts[10:25]])
        radii = np.concatenate([np.full(10, 1.5), np.full(15, 0.8)])
        rid = np.repeat([0, 1], [10, 15])
        merged = engine.query_merged(queries, radii, rid, [8, 4])
        for sl, r, k, (got_idx, got_cnt) in zip(
            (slice(0, 10), slice(10, 25)), (1.5, 0.8), (8, 4), [*merged]
        ):
            want_idx, want_cnt = ball_query(engine.tree, queries[sl], r, k)
            np.testing.assert_array_equal(got_idx, want_idx)
            np.testing.assert_array_equal(got_cnt, want_cnt)

    def test_scalar_radius_and_k_broadcast(self, rng):
        pts = rng.normal(size=(100, 3))
        engine = BatchedBallQuery(build_kdtree(pts))
        (got_idx, got_cnt), = engine.query_merged(
            pts[:7], 0.4, np.zeros(7, dtype=int), 5
        )
        want_idx, want_cnt = engine.query(pts[:7], 0.4, 5)
        np.testing.assert_array_equal(got_idx, want_idx)
        np.testing.assert_array_equal(got_cnt, want_cnt)

    def test_empty_request_list(self, rng):
        engine = BatchedBallQuery(build_kdtree(rng.normal(size=(10, 3))))
        assert engine.query_merged(np.empty((0, 3)), np.empty(0), np.empty(0), []) == []

    def test_validation(self, rng):
        engine = BatchedBallQuery(build_kdtree(rng.normal(size=(20, 3))))
        q = np.zeros((4, 3))
        with pytest.raises(ValueError):  # non-positive radius
            engine.query_merged(q, [0.1, -1.0, 0.1, 0.1], [0, 0, 1, 1], [4, 4])
        with pytest.raises(ValueError):  # non-positive K
            engine.query_merged(q, np.full(4, 0.1), [0, 0, 1, 1], [4, 0])
        with pytest.raises(ValueError):  # radii shape mismatch
            engine.query_merged(q, np.full(3, 0.1), [0, 0, 1, 1], [4, 4])
        with pytest.raises(ValueError):  # request id out of range
            engine.query_merged(q, np.full(4, 0.1), [0, 0, 1, 2], [4, 4])
        with pytest.raises(ValueError):  # not grouped
            engine.query_merged(q, np.full(4, 0.1), [0, 1, 0, 1], [4, 4])


class TestNearestNodePass:
    def test_matches_knn_search(self, test_seed):
        for offset in range(6):
            rng = np.random.default_rng(test_seed + offset)
            n = int(rng.integers(1, 300))
            pts = rng.normal(size=(n, 3)) * rng.uniform(0.2, 2.0)
            if offset % 2:  # duplicate sites: maximal distance ties
                pts = np.repeat(pts[: max(1, n // 4)], 4, axis=0)
            tree = build_kdtree(pts)
            queries = np.concatenate(
                [rng.normal(size=(25, 3)), pts[: min(5, len(pts))]]
            )
            want = np.array([knn_search(tree, q, 1)[0] for q in queries])
            np.testing.assert_array_equal(
                batched_nearest_node(tree, queries), want
            )

    def test_all_empty_batch_parity(self, rng):
        # The zero-neighbor fallback path end to end: every row empty.
        pts = rng.normal(size=(128, 3))
        tree = build_kdtree(pts)
        queries = rng.normal(size=(30, 3)) + 50.0
        queries[10:20] = queries[:10]  # duplicates exercise the dedupe
        want_idx, want_cnt = ball_query(tree, queries, 0.2, 5)
        got_idx, got_cnt = BatchedBallQuery(tree).query(queries, 0.2, 5)
        np.testing.assert_array_equal(got_idx, want_idx)
        np.testing.assert_array_equal(got_cnt, want_cnt)
        assert (got_cnt == 0).all()


class TestDepthGuard:
    def test_frontier_sweep_rejects_deep_tree_eagerly(self):
        deep = linear_chain_tree(60)
        with pytest.raises(ValueError, match="DFS-rank depth limit"):
            frontier_sweep(deep, np.zeros((1, 3)), 0.5)

    def test_query_paths_are_covered_by_the_moved_guard(self):
        from repro.runtime import TracedBallQuery

        deep = linear_chain_tree(60)
        with pytest.raises(ValueError, match="DFS-rank depth limit"):
            BatchedBallQuery(deep).query(np.zeros((1, 3)), 0.5, 4)
        with pytest.raises(ValueError, match="DFS-rank depth limit"):
            TracedBallQuery(deep).query(np.zeros((1, 3)), 0.5, 4)
        with pytest.raises(ValueError, match="DFS-rank depth limit"):
            batched_nearest_node(deep, np.zeros((1, 3)))

    def test_shallow_chain_still_works(self):
        # Below the limit the same malformed shape must keep working.
        chain = linear_chain_tree(20)
        idx, cnt = BatchedBallQuery(chain).query(np.zeros((1, 3)), 1.5, 4)
        want_idx, want_cnt = ball_query(chain, np.zeros((1, 3)), 1.5, 4)
        np.testing.assert_array_equal(idx, want_idx)
        np.testing.assert_array_equal(cnt, want_cnt)


class TestQueryService:
    def test_randomized_coalesced_parity(self, test_seed):
        # The acceptance criterion: coalesced results bit-identical to
        # independent per-request query calls — mixed radii, mixed K,
        # duplicate clouds, interleaved distinct clouds.
        for offset in range(4):
            rng = np.random.default_rng(test_seed + offset)
            clouds = [
                rng.normal(size=(int(rng.integers(50, 300)), 3))
                for _ in range(3)
            ]
            clouds.append(clouds[0].copy())  # duplicate content, new array
            requests = random_requests(rng, clouds, n_requests=16)
            service = QueryService()
            tickets = [service.submit(*request) for request in requests]
            service.flush()
            assert_request_parity(requests, [t.result() for t in tickets])

    def test_duplicate_clouds_share_one_sweep(self, rng):
        pts = rng.normal(size=(100, 3))
        service = QueryService()
        for i in range(6):
            # Same content through distinct array objects: one digest.
            service.submit(pts.copy(), pts[: 3 + i], 0.2 + 0.05 * i, 2 + i)
        assert service.pending == 6
        assert service.flush() == 1
        assert service.pending == 0
        assert service.stats.sweeps == 1
        assert service.stats.requests == 6
        assert service.stats.max_coalesced == 6
        assert service.stats.coalesce_factor == 6.0

    def test_interleaved_distinct_clouds_split_per_cloud(self, rng):
        a, b = rng.normal(size=(80, 3)), rng.normal(size=(80, 3))
        service = QueryService()
        requests = []
        for i in range(8):
            cloud = a if i % 2 == 0 else b
            requests.append((cloud, cloud[: 5 + i], 0.3, 6))
        tickets = [service.submit(*request) for request in requests]
        assert service.flush() == 2  # one merged sweep per distinct cloud
        assert service.stats.sweeps == 2
        assert service.stats.max_coalesced == 4
        assert_request_parity(requests, [t.result() for t in tickets])

    def test_ticket_result_before_flush_raises(self, rng):
        service = QueryService()
        ticket = service.submit(rng.normal(size=(20, 3)), np.zeros((1, 3)), 0.5, 4)
        assert not ticket.done
        with pytest.raises(RuntimeError):
            ticket.result()
        with pytest.raises(RuntimeError, match="not served"):
            ticket.wait
        service.flush()
        assert ticket.done and ticket.wait >= 0

    def test_submit_validation(self, rng):
        service = QueryService()
        pts = rng.normal(size=(20, 3))
        with pytest.raises(ValueError):
            service.submit(pts, pts[:2], -0.5, 4)
        with pytest.raises(ValueError):
            service.submit(pts, pts[:2], 0.5, 0)
        with pytest.raises(ValueError):  # query width mismatch
            service.submit(pts, np.zeros((3, 2)), 0.5, 4)
        with pytest.raises(ValueError):  # malformed cloud
            service.submit(np.zeros((0, 3)), pts[:2], 0.5, 4)
        with pytest.raises(ValueError):
            service.submit(np.zeros((4, 2)), pts[:2], 0.5, 4)
        assert service.pending == 0  # bad requests never enter the queue

    def test_submit_rejects_nonfinite_inputs(self, rng):
        # A NaN query row would error the whole merged sweep it joined,
        # settling every co-queued same-cloud ticket with its exception —
        # so non-finite values must fail their own caller at submit time.
        service = QueryService()
        pts = rng.normal(size=(20, 3))
        nan_pts = pts.copy()
        nan_pts[3, 1] = np.nan
        with pytest.raises(ValueError, match="finite"):
            service.submit(nan_pts, pts[:2], 0.5, 4)
        inf_queries = pts[:4].copy()
        inf_queries[2, 0] = np.inf
        with pytest.raises(ValueError, match="finite"):
            service.submit(pts, inf_queries, 0.5, 4)
        with pytest.raises(ValueError, match="radius"):
            service.submit(pts, pts[:2], float("nan"), 4)
        with pytest.raises(ValueError, match="radius"):
            service.submit(pts, pts[:2], float("inf"), 4)
        assert service.pending == 0

    def test_failing_group_does_not_strand_other_groups(self, rng):
        # A request whose cloud cannot be served (here: a tree deeper than
        # the DFS-rank limit, injected past submit-time validation) must
        # settle its own ticket with the error while co-queued requests on
        # other clouds are still served.
        service = QueryService()
        pts = rng.normal(size=(50, 3))
        good = service.submit(pts, pts[:4], 0.3, 4)
        bad = service.submit(pts + 5.0, pts[:4], 0.3, 4)
        deep = linear_chain_tree(60)
        # Poison the bad request's tree-cache slot with the deep tree.
        from repro.runtime.session import geometry_digest

        service.session.trees.put(
            geometry_digest(np.asarray(pts + 5.0, dtype=np.float64)), deep
        )
        service.flush()
        assert good.done and good.error is None
        assert bad.done and bad.error is not None
        with pytest.raises(ValueError, match="DFS-rank depth limit"):
            bad.result()
        want_idx, want_cnt = ball_query(build_kdtree(pts), pts[:4], 0.3, 4)
        np.testing.assert_array_equal(good.result()[0], want_idx)
        np.testing.assert_array_equal(good.result()[1], want_cnt)
        assert service.stats.failed_requests == 1
        assert service.stats.requests == 1  # only the served request counts
        assert service.flush() == 0  # the failed ticket was settled, not requeued

    def test_all_failed_flush_reports_zero_sweeps(self, rng):
        # Every queued request fails (one poisoned cloud group): the flush
        # executed nothing, so it returns 0, counts no flush and no sweep,
        # and books every member under failed_requests — then the service
        # keeps serving later good requests as if nothing happened.
        from repro.runtime.session import geometry_digest

        service = QueryService()
        pts = rng.normal(size=(50, 3))
        tickets = [service.submit(pts, pts[: 2 + i], 0.3, 4) for i in range(3)]
        service.session.trees.put(
            geometry_digest(np.asarray(pts, dtype=np.float64)),
            linear_chain_tree(60),
        )
        assert service.flush() == 0
        assert service.stats.flushes == 0
        assert service.stats.sweeps == 0
        assert service.stats.requests == 0
        assert service.stats.failed_requests == 3
        for ticket in tickets:
            assert ticket.done and ticket.error is not None
        # The session cache still holds the poisoned tree for this digest,
        # so recover with a different cloud: the service itself is healthy.
        other = pts + 5.0
        good = service.submit(other, other[:4], 0.3, 4)
        assert service.flush() == 1
        assert service.stats.flushes == 1
        assert good.error is None
        want_idx, want_cnt = ball_query(build_kdtree(other), other[:4], 0.3, 4)
        np.testing.assert_array_equal(good.result()[0], want_idx)
        np.testing.assert_array_equal(good.result()[1], want_cnt)

    def test_flush_empty_queue_is_a_noop(self):
        service = QueryService()
        assert service.flush() == 0
        assert service.stats.flushes == 0
        assert service.stats.coalesce_factor == 0.0

    def test_stats_accumulate_and_clock_is_injectable(self, rng):
        ticks = iter(np.arange(0.0, 100.0, 0.5))
        service = QueryService(clock=lambda: float(next(ticks)))
        pts = rng.normal(size=(50, 3))
        service.submit(pts, pts[:4], 0.3, 4)
        service.submit(pts, pts[:7], 0.2, 8)
        service.flush()
        assert service.stats.queries == 11
        assert service.stats.mean_wait > 0
        assert service.stats.throughput > 0
        assert service.stats.serve_time > 0


def run(coro):
    return asyncio.run(coro)


class TestAsyncFrontend:
    def test_concurrent_submits_parity_and_coalescing(self, rng):
        clouds = [rng.normal(size=(120, 3)) for _ in range(2)]
        requests = random_requests(rng, clouds, n_requests=12)

        async def main():
            async with AsyncQueryFrontend(window=0.002, max_batch=32) as frontend:
                return await asyncio.gather(
                    *[frontend.submit(*request) for request in requests]
                ), frontend.service.stats

        results, stats = run(main())
        assert_request_parity(requests, results)
        # All 12 submits land inside one micro-batch window: at most one
        # merged sweep per distinct cloud.
        assert stats.sweeps <= 2
        assert stats.requests == 12
        assert stats.coalesce_factor >= 6.0

    def test_max_batch_cuts_the_window_short(self, rng):
        pts = rng.normal(size=(60, 3))

        async def main():
            # A window far longer than the test: only the max_batch cut
            # can flush, so the await below completing proves it did.
            async with AsyncQueryFrontend(window=30.0, max_batch=4) as frontend:
                results = await asyncio.gather(
                    *[frontend.submit(pts, pts[:3], 0.3, 4) for _ in range(4)]
                )
                return results, frontend.service.stats.flushes

        results, flushes = run(main())
        assert len(results) == 4 and flushes == 1

    def test_backpressure_bounds_pending(self, rng):
        pts = rng.normal(size=(60, 3))

        async def main():
            async with AsyncQueryFrontend(
                window=0.0, max_batch=2, max_pending=2
            ) as frontend:
                results = await asyncio.gather(
                    *[frontend.submit(pts, pts[:2], 0.3, 4) for _ in range(10)]
                )
                return results, frontend.service.stats

        results, stats = run(main())
        assert len(results) == 10
        # At most 2 requests may ever be in flight, so no merged batch can
        # exceed 2 and the 10 submits need at least 5 flushes.
        assert stats.max_coalesced <= 2
        assert stats.flushes >= 5

    def test_backpressure_never_overshoots_the_bound(self, rng):
        # The broadcast-Event wakeup this replaces released *every* parked
        # submitter on one flush, so a burst could overshoot max_pending.
        # Spy on the underlying service.submit to observe the queue depth
        # at every admission: it must never exceed the bound.
        pts = rng.normal(size=(60, 3))
        depths = []

        async def main():
            async with AsyncQueryFrontend(
                window=0.0, max_batch=4, max_pending=4
            ) as frontend:
                inner_submit = frontend.service.submit

                def spying_submit(*args, **kwargs):
                    depths.append(frontend.pending)
                    return inner_submit(*args, **kwargs)

                frontend.service.submit = spying_submit
                results = await asyncio.gather(
                    *[frontend.submit(pts, pts[:2], 0.3, 4) for _ in range(30)]
                )
                return results

        results = run(main())
        assert len(results) == 30 and len(depths) == 30
        # frontend.pending at admission time is the depth *before* this
        # request joins, so the bound is max_pending - 1.
        assert max(depths) <= 3

    def test_backpressured_submitters_all_complete_under_timeout(self, rng):
        # Regression for the lost-wakeup race: _space.clear() before
        # wait() could swallow a concurrent set(), parking the last
        # submitters forever.  With many more submitters than capacity,
        # every one must still complete promptly.
        pts = rng.normal(size=(40, 3))

        async def main():
            async with AsyncQueryFrontend(
                window=0.0, max_batch=2, max_pending=2
            ) as frontend:
                return await asyncio.wait_for(
                    asyncio.gather(
                        *[frontend.submit(pts, pts[:2], 0.3, 4) for _ in range(40)]
                    ),
                    timeout=60.0,
                )

        results = run(main())
        assert len(results) == 40
        for indices, counts in results:
            assert indices.shape == (2, 4)

    def test_drain_serves_queue_then_rejects(self, rng):
        pts = rng.normal(size=(60, 3))

        async def main():
            frontend = AsyncQueryFrontend(window=10.0, max_batch=64)
            await frontend.start()
            submits = [
                asyncio.ensure_future(frontend.submit(pts, pts[:2], 0.3, 4))
                for _ in range(3)
            ]
            await asyncio.sleep(0)  # let the submits queue up
            await frontend.drain()  # cuts the 10 s window short
            results = await asyncio.gather(*submits)
            with pytest.raises(RuntimeError, match="draining"):
                await frontend.submit(pts, pts[:2], 0.3, 4)
            return results

        results = run(main())
        assert len(results) == 3
        for indices, counts in results:
            assert indices.shape == (2, 4)

    def test_drain_fails_parked_submitters_fast(self, rng):
        # Submitters parked on backpressure when drain() lands must be
        # woken and failed immediately — not left awaiting space that a
        # draining frontend will never free for them.
        pts = rng.normal(size=(60, 3))

        async def main():
            frontend = AsyncQueryFrontend(
                window=30.0, max_batch=64, max_pending=64
            )
            await frontend.start()
            submits = [
                asyncio.ensure_future(frontend.submit(pts, pts[:2], 0.3, 4))
                for _ in range(70)  # 64 queue, 6 park on backpressure
            ]
            await asyncio.sleep(0)
            assert frontend.pending == 64
            await asyncio.wait_for(frontend.drain(), timeout=60.0)
            return await asyncio.gather(*submits, return_exceptions=True)

        outcomes = run(main())
        served = [o for o in outcomes if not isinstance(o, Exception)]
        failed = [o for o in outcomes if isinstance(o, Exception)]
        # The 64 queued requests are served by the drain flush; the 6
        # parked ones fail fast with the draining error.
        assert len(served) == 64 and len(failed) == 6
        for outcome in failed:
            assert isinstance(outcome, RuntimeError)
            assert "draining" in str(outcome)
        for indices, counts in served:
            assert indices.shape == (2, 4)

    def test_submit_before_start_raises(self, rng):
        pts = rng.normal(size=(20, 3))

        async def main():
            frontend = AsyncQueryFrontend()
            with pytest.raises(RuntimeError, match="not started"):
                await frontend.submit(pts, pts[:2], 0.3, 4)

        run(main())

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            AsyncQueryFrontend(window=-1.0)
        with pytest.raises(ValueError):
            AsyncQueryFrontend(max_batch=0)
        with pytest.raises(ValueError):
            AsyncQueryFrontend(max_batch=8, max_pending=4)


class TestTraceReplay:
    def test_synthetic_trace_replay_is_identical(self):
        trace = synthetic_trace(
            num_requests=18, num_clouds=2, cloud_size=128,
            queries_per_request=8, seed=3,
        )
        report = replay_trace(trace, window=0.001, max_batch=16)
        assert report.results_identical
        assert report.requests == 18
        assert report.stats.requests == 18
        assert report.stats.coalesce_factor > 1.0

    def test_synthetic_trace_validation(self):
        with pytest.raises(ValueError):
            synthetic_trace(num_requests=0)
        with pytest.raises(ValueError):
            synthetic_trace(queries_per_request=0)
