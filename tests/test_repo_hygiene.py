"""Repository hygiene: no compiled artifacts may be tracked.

PR 8 untracked seven ``__pycache__/*.pyc`` files that had ridden along
since the lint package landed.  Bytecode is interpreter-version-specific,
diffs as binary noise, and can shadow stale code paths in review — so the
ban is enforced both here (tier-1) and as a CI workflow step, keeping the
guard active even when only one of the two lanes runs.
"""

import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

FORBIDDEN_SUFFIXES = (".pyc", ".pyo", ".pyd", ".so", ".egg")
FORBIDDEN_DIRS = ("__pycache__",)


def _tracked_files():
    proc = subprocess.run(
        ["git", "ls-files", "-z"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:  # not a git checkout (e.g. exported tarball)
        pytest.skip("git metadata unavailable")
    return [p for p in proc.stdout.split("\0") if p]


def test_no_tracked_compiled_artifacts():
    tracked = _tracked_files()
    offenders = [
        p
        for p in tracked
        if p.endswith(FORBIDDEN_SUFFIXES)
        or any(part in FORBIDDEN_DIRS for part in Path(p).parts)
    ]
    assert not offenders, (
        "compiled artifacts are tracked; `git rm --cached` them and rely on "
        f".gitignore: {offenders}"
    )


def test_gitignore_covers_bytecode():
    ignore = (REPO_ROOT / ".gitignore").read_text()
    for pattern in ("__pycache__/", "*.py[cod]"):
        assert pattern in ignore, f".gitignore lost the {pattern!r} pattern"
