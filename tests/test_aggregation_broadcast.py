"""Regression suite for the PR 3 point-buffer broadcast fix and the
vectorized top-tree phase.

The point buffer used to count two requests for the *same point id* as a
bank conflict.  ``ball_query`` pads every short row by repeating the first
neighbor, so such duplicates are guaranteed on realistic workloads and the
phantom conflicts skewed the reproduced Fig. 5 rates, stall cycles, and
SRAM energy.  Same-address losers are now served by the winner's broadcast
read in both aggregation modes: one cycle, ``SramStats.broadcasts``
ledger, no ``conflicted``/``elided`` entry, no extra read energy.

The second half pins the vectorized top phase: cycle- and stall-identical
to the per-group reference loop over randomized trees, heights, and PE
counts (see ``benchmarks/test_topphase_perf.py`` for the speed floor).
"""

import numpy as np
import pytest

from repro.accel import AggregationUnit
from repro.accel.pe import PIPELINE_DEPTH
from repro.accel.search_engine import NeighborSearchEngine
from repro.core import (
    PointBufferBanking,
    TreeBufferBanking,
    aggregation_conflict_rate,
    apply_aggregation_elision,
)
from repro.core.config import CrescentHardwareConfig
from repro.core.split_tree import SplitTree
from repro.kdtree import ball_query, build_kdtree
from repro.memsim import SramStats
from repro.memsim.sram import BankedSramConfig
from repro.runtime import reference_top_phase, vectorized_top_phase


# ----------------------------------------------------------------------
# Padded rows: duplicates broadcast, never conflict
# ----------------------------------------------------------------------
class TestPaddedRowsNoPhantomConflicts:
    def test_all_duplicate_row_rate_zero(self):
        # A fully padded row (one real neighbor repeated K times) is one
        # read broadcast to every port — the Fig. 5 acceptance criterion.
        indices = np.full((8, 16), 42)
        assert aggregation_conflict_rate(indices, PointBufferBanking(16), 16) == 0.0

    def test_both_modes_populate_broadcast_ledger(self):
        indices = np.full((8, 16), 42)
        unit = AggregationUnit()
        stall = unit.run(indices, num_points=64, elide=False)
        elide = unit.run(indices, num_points=64, elide=True)
        for res in (stall, elide):
            assert res.sram.broadcasts == 8 * 15
            assert res.sram.conflicted == 0
            assert res.sram.elided == 0
            assert res.sram.reads_served == 8  # energy-bearing reads only
            assert res.cycles == 8  # one broadcast cycle per group
        np.testing.assert_array_equal(elide.effective_indices, indices)

    def test_padding_only_duplicates_are_conflict_free(self):
        # Distinct real neighbors on distinct banks plus repeat-first
        # padding: the padded tail must add no conflicts in either mode.
        real = np.array([3, 20, 37, 54])  # banks 3, 4, 5, 6 of 16
        row = np.concatenate([real, np.full(12, real[0])])
        indices = row[None, :]
        stats = SramStats()
        out = apply_aggregation_elision(
            indices, PointBufferBanking(16), 16, stats=stats
        )
        np.testing.assert_array_equal(out, indices)  # nothing replicated
        assert stats.conflicted == 0
        assert stats.broadcasts == 12
        stall = AggregationUnit().run(indices, num_points=64, elide=False)
        assert stall.sram.conflicted == 0
        assert stall.cycles == 1  # four distinct banks, no serialization

    def test_broadcast_ports_keep_their_own_neighbor(self):
        # Port 2 repeats the bank-0 winner's id: broadcast, not rewritten.
        # Port 1 requests a different id on bank 0: elided to the winner.
        indices = np.array([[0, 16, 0, 3]])
        stats = SramStats()
        out = apply_aggregation_elision(
            indices, PointBufferBanking(16), 16, stats=stats
        )
        assert out.tolist() == [[0, 0, 0, 3]]
        assert stats.broadcasts == 1
        assert stats.conflicted == 1
        assert stats.elided == 1

    def test_stall_mode_merges_duplicates_of_retried_id(self):
        # ids 16 appears twice behind the bank-0 winner id 0: the retry
        # read of 16 is broadcast to both ports — 2 cycles, 3 reads.
        indices = np.array([[0, 16, 16, 3]])
        res = AggregationUnit().run(indices, num_points=32, elide=False)
        assert res.cycles == 2
        assert res.sram.reads_served == 3
        assert res.sram.broadcasts == 1
        assert res.sram.conflicted == 1  # the one retried distinct id

    def test_stall_invariant_conflicted_is_retries_only(self, rng):
        # conflicted == stalled retries and accesses == reads + broadcasts
        # on random id matrices (the point-buffer ledger convention).
        indices = rng.integers(0, 300, size=(50, 16))
        res = AggregationUnit().run(indices, num_points=300, elide=False)
        s = res.sram
        assert s.accesses == s.reads_served + s.broadcasts
        assert s.elided == 0
        assert 0 <= s.conflicted <= s.reads_served
        elide = AggregationUnit().run(indices, num_points=300, elide=True)
        e = elide.sram
        assert e.conflicted == e.elided
        assert e.accesses == e.reads_served + e.broadcasts + e.elided


# ----------------------------------------------------------------------
# Golden before/after deltas on a padded workload
# ----------------------------------------------------------------------
class TestGoldenPaddedWorkloadDeltas:
    """Pinned conflict ledgers for a deterministic padded ball query.

    The legacy accounting counted every same-bank loser — including
    same-address ones — so its rate equals
    ``(conflicted + broadcasts) / accesses`` under the new ledgers.
    These numbers are golden: they move only if arbitration semantics
    change, which is exactly what this suite is meant to catch.
    """

    RADIUS = 0.4
    GOLDEN = dict(
        accesses=4096,
        conflicted=391,
        broadcasts=2398,
        elided=391,
        reads_served=1307,
    )

    @pytest.fixture(scope="class")
    def padded_indices(self):
        rng = np.random.default_rng(20260730)  # fixed: golden numbers
        pts = rng.normal(size=(1024, 3))
        tree = build_kdtree(pts)
        queries = pts[rng.permutation(1024)[:256]]
        indices, counts = ball_query(tree, queries, self.RADIUS, 16)
        assert (counts < 16).sum() > 200  # a genuinely padded workload
        return indices

    def test_golden_ledgers(self, padded_indices):
        stats = SramStats()
        apply_aggregation_elision(
            padded_indices, PointBufferBanking(16), 16, stats=stats
        )
        measured = {k: getattr(stats, k) for k in self.GOLDEN}
        assert measured == self.GOLDEN

    def test_golden_before_after_rates(self, padded_indices):
        stats = SramStats()
        apply_aggregation_elision(
            padded_indices, PointBufferBanking(16), 16, stats=stats
        )
        fixed = stats.conflict_rate
        legacy = (stats.conflicted + stats.broadcasts) / stats.accesses
        assert fixed == pytest.approx(self.GOLDEN["conflicted"] / self.GOLDEN["accesses"])
        assert legacy == pytest.approx(
            (self.GOLDEN["conflicted"] + self.GOLDEN["broadcasts"])
            / self.GOLDEN["accesses"]
        )
        # The phantom share was the dominant term on this workload.
        assert legacy > 0.6 > 0.2 > fixed

    def test_stall_energy_reads_match_elide_convention(self, padded_indices):
        # reads_served (and hence sram_aggregation energy) now counts one
        # read per distinct id per group in both modes — the 2398
        # broadcast-served ports no longer charge a bank read each.
        unit = AggregationUnit()
        stall = unit.run(padded_indices, num_points=1024, elide=False)
        elide = unit.run(padded_indices, num_points=1024, elide=True)
        assert stall.sram.reads_served == 1698  # winners + stalled retries
        assert stall.sram.conflicted == self.GOLDEN["conflicted"]
        assert elide.sram.reads_served == self.GOLDEN["reads_served"]
        agg_pj = stall.energy.components["sram_aggregation"]
        assert agg_pj == stall.sram.reads_served * 16  # 1 pJ/byte records


# ----------------------------------------------------------------------
# Vectorized top phase: equivalence with the per-group loop
# ----------------------------------------------------------------------
class TestTopPhaseEquivalence:
    def test_randomized_trees_heights_pes(self, rng):
        for _ in range(60):
            n = int(rng.integers(8, 500))
            pts = rng.normal(size=(n, 3))
            tree = build_kdtree(pts)
            if tree.height < 2:
                continue
            ht = int(rng.integers(1, tree.height))
            num_pes = int(rng.integers(1, 13))
            banks = int(rng.integers(1, 9))
            m = int(rng.integers(1, 160))
            queries = rng.normal(size=(m, 3)) * 2.0
            split = SplitTree(tree, ht)
            banking = TreeBufferBanking(banks)
            vec = vectorized_top_phase(split, queries, num_pes, banking, 4)
            ref = reference_top_phase(split, queries, num_pes, banking, 4)
            assert vec == ref, (n, ht, num_pes, banks, m)

    def test_engine_top_phase_uses_vectorized_contract(self, rng):
        pts = rng.normal(size=(512, 3))
        tree = build_kdtree(pts)
        queries = pts[rng.permutation(512)[:100]]
        hw = CrescentHardwareConfig().with_overrides(
            num_pes=8,
            tree_buffer=BankedSramConfig(size_bytes=8 * 1024, num_banks=4),
        )
        engine = NeighborSearchEngine(hw)
        split = SplitTree(tree, 4)
        assert engine._top_phase(split, queries) == reference_top_phase(
            split, queries, hw.num_pes, engine.banking,
            fill_cycles=PIPELINE_DEPTH - 1,
        )

    def test_zero_height_and_empty_batch(self, rng):
        pts = rng.normal(size=(64, 3))
        tree = build_kdtree(pts)
        banking = TreeBufferBanking(4)
        split = SplitTree(tree, 0)
        assert vectorized_top_phase(split, pts[:8], 4, banking, 4) == (0, 0)
        split = SplitTree(tree, 2)
        empty = np.empty((0, 3))
        assert vectorized_top_phase(split, empty, 4, banking, 4) == (0, 0)
        assert reference_top_phase(split, empty, 4, banking, 4) == (0, 0)

    def test_fill_charged_per_fetching_group_only(self, rng):
        # Two groups of 4 on a height-2 top tree: each group that fetches
        # pays one fill/drain; cycles grow accordingly.
        pts = rng.normal(size=(256, 3))
        tree = build_kdtree(pts)
        split = SplitTree(tree, 1)
        banking = TreeBufferBanking(8)
        queries = rng.normal(size=(8, 3))
        one_group, _ = vectorized_top_phase(split, queries, 8, banking, 7)
        two_groups, _ = vectorized_top_phase(split, queries, 4, banking, 7)
        # Same single-level broadcast fetch per group; the fill charge
        # scales with the number of fetching groups.
        assert one_group == 1 + 7
        assert two_groups == 2 * (1 + 7)
