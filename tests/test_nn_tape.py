"""Tape engine vs. frozen closure reference: bit-identical gradients.

``nn.tensor`` (flat tape, replayed in reverse) is pinned against
``nn.reference.ReferenceTensor`` (the retired closure-chained engine, kept
as per-step ground truth) the same way the vectorized neighbor engines are
pinned against ``kdtree.exact``:

* randomized programs over **every primitive** — broadcasting shapes,
  gather (``take``), max-reduction ties included — run on both engines from
  identical leaves; forward bits and every leaf gradient must be equal
  exactly (``==``), not approximately;
* the bitwise suite keeps each node's *distinct consumer-op* count ≤ 2,
  which covers every graph the models build: the two engines may fire a
  node's consumers in different orders, and IEEE-754 addition is
  commutative (bitwise) but not associative, so two contributions always
  agree while three may reassociate.  A companion suite with unrestricted
  fan-out checks ``allclose`` at float-epsilon scale;
* tape entries are freed by the pass (and the reference engine releases its
  closure graph), so a finished step retains no op graph — asserted here
  down to a real trained epoch.
"""

import numpy as np
import pytest

from repro.nn import ReferenceTensor, Tensor, no_grad, reference_no_grad
from repro.nn.tape import reset_tape, tape_length


# ----------------------------------------------------------------------
# Program generator: engine-agnostic instruction lists
# ----------------------------------------------------------------------
# Each op: (arity, builder).  Builders take node objects (either engine) and
# a kwargs dict; generation-time validity is checked against numpy shapes.
OPS = {
    "add": lambda a, b, **kw: a + b,
    "radd_scalar": lambda a, **kw: kw["c"] + a,
    "neg": lambda a, **kw: -a,
    "sub": lambda a, b, **kw: a - b,
    "rsub_scalar": lambda a, **kw: kw["c"] - a,
    "mul": lambda a, b, **kw: a * b,
    "div": lambda a, b, **kw: a / b,
    "rdiv_scalar": lambda a, **kw: kw["c"] / a,
    "pow": lambda a, **kw: a ** kw["exponent"],
    "matmul": lambda a, b, **kw: a @ b,
    "exp": lambda a, **kw: a.exp(),
    "log": lambda a, **kw: a.log(),
    "relu": lambda a, **kw: a.relu(),
    "tanh": lambda a, **kw: a.tanh(),
    "sigmoid": lambda a, **kw: a.sigmoid(),
    "sum": lambda a, **kw: a.sum(axis=kw["axis"], keepdims=kw["keepdims"]),
    "mean": lambda a, **kw: a.mean(axis=kw["axis"], keepdims=kw["keepdims"]),
    "max": lambda a, **kw: a.max(axis=kw["axis"], keepdims=kw["keepdims"]),
    "reshape": lambda a, **kw: a.reshape(*kw["shape"]),
    "transpose": lambda a, **kw: a.transpose(*kw["axes"]),
    "take": lambda a, **kw: a.take(kw["indices"]),
    "concat": lambda a, b, **kw: a.concat([b], axis=kw["axis"]),
}

# Ops whose domain needs positive inputs; the generator guards them by
# routing through sigmoid(x) + 0.5 first.
_POSITIVE_ONLY = {"log", "div", "rdiv_scalar"}


def _leaf_shapes(rng):
    menu = [(3, 4), (4,), (1, 4), (3, 1), (4, 2), (2, 3, 4), ()]
    count = int(rng.integers(3, 6))
    return [menu[int(i)] for i in rng.integers(0, len(menu), size=count)]


def _gen_program(seed, steps=14, max_consumers=2):
    """Build (leaf_arrays, instrs).  Each instr: (op, operand_ids, kwargs).

    Node ids index the combined [leaves..., results...] list.  Each node
    receives at most ``max_consumers`` gradient *contributions* (a use like
    x*x counts twice): two contributions always accumulate to identical
    bits under either consumer-firing order (IEEE addition is commutative),
    three or more may reassociate.
    """
    rng = np.random.default_rng(seed)
    shapes = _leaf_shapes(rng)
    # Quantized values make max-reduction ties likely; offset keeps exp/pow
    # in range.
    leaves = [np.round(rng.normal(scale=1.2, size=s), 1) for s in shapes]
    vals = [a.copy() for a in leaves]
    consumers = [0] * len(vals)
    instrs = []

    def usable(i):
        return consumers[i] < max_consumers

    def emit(op, ids, kwargs):
        for i in ids:
            consumers[i] += 1
        arrays = [vals[i] for i in ids]
        out = OPS[op](*[_NumpyNode(a) for a in arrays], **kwargs).data
        instrs.append((op, tuple(ids), kwargs))
        vals.append(out)
        consumers.append(0)
        return len(vals) - 1

    names = list(OPS)
    for _ in range(steps):
        op = names[int(rng.integers(0, len(names)))]
        cands = [i for i in range(len(vals)) if usable(i)]
        if not cands:
            break
        rng.shuffle(cands)
        try:
            if op in ("add", "sub", "mul", "div"):
                a = cands[0]
                pool = [
                    b
                    for b in cands
                    if _broadcastable(vals[a], vals[b])
                    and (b != a or consumers[a] + 2 <= max_consumers)
                ]
                if not pool:
                    continue
                b = pool[0]
                if op == "div":
                    b = emit("sigmoid", (b,), {})
                    b = emit("radd_scalar", (b,), {"c": 0.5})
                    if not usable(a):
                        continue
                emit(op, (a, b), {})
            elif op in ("radd_scalar", "rsub_scalar", "pow"):
                kw = {"c": 1.5} if op != "pow" else {"exponent": int(rng.integers(2, 4))}
                emit(op, (cands[0],), kw)
            elif op == "rdiv_scalar":
                a = emit("sigmoid", (cands[0],), {})
                a = emit("radd_scalar", (a,), {"c": 0.5})
                if usable(a):
                    emit("rdiv_scalar", (a,), {"c": 2.0})
            elif op == "log":
                a = emit("sigmoid", (cands[0],), {})
                a = emit("radd_scalar", (a,), {"c": 0.5})
                if usable(a):
                    emit("log", (a,), {})
            elif op == "matmul":
                pairs = [
                    (a, b)
                    for a in cands
                    for b in cands
                    if vals[a].ndim >= 2
                    and vals[b].ndim == 2
                    and vals[a].shape[-1] == vals[b].shape[0]
                ]
                if pairs:
                    emit("matmul", pairs[0], {})
            elif op in ("sum", "mean", "max"):
                pool = [i for i in cands if vals[i].ndim >= 1 and vals[i].size]
                if not pool:
                    continue
                a = pool[0]
                axis = int(rng.integers(0, vals[a].ndim))
                if op != "max" and rng.integers(0, 3) == 0:
                    axis = None
                emit(op, (a,), {"axis": axis, "keepdims": bool(rng.integers(0, 2))})
            elif op == "reshape":
                a = cands[0]
                emit("reshape", (a,), {"shape": (-1,) if vals[a].ndim else (1,)})
            elif op == "transpose":
                pool = [i for i in cands if vals[i].ndim >= 2]
                if not pool:
                    continue
                a = pool[0]
                axes = tuple(int(x) for x in rng.permutation(vals[a].ndim))
                emit("transpose", (a,), {"axes": axes})
            elif op == "take":
                pool = [i for i in cands if vals[i].ndim >= 1 and vals[i].shape[0] > 0]
                if not pool:
                    continue
                a = pool[0]
                n = vals[a].shape[0]
                # Repeated indices exercise scatter-add accumulation.
                idx = rng.integers(0, n, size=(2, 3))
                emit("take", (a,), {"indices": idx})
            elif op == "concat":
                groups = {}
                for i in cands:
                    groups.setdefault(vals[i].shape, []).append(i)
                match = [g for g in groups.values() if len(g) >= 2 and vals[g[0]].ndim >= 1]
                if not match:
                    continue
                a, b = match[0][:2]
                emit("concat", (a, b), {"axis": -1})
            else:
                emit(op, (cands[0],), {})
        except (ValueError, FloatingPointError):
            continue
    return leaves, instrs, consumers


def _broadcastable(a, b):
    try:
        np.broadcast_shapes(a.shape, b.shape)
        return True
    except ValueError:
        return False


class _NumpyNode:
    """Shape/value mirror used during generation (duck-types the ops)."""

    def __init__(self, data):
        self.data = np.asarray(data, dtype=np.float64)

    def _wrap(self, data):
        return _NumpyNode(data)

    def __add__(self, o):
        return self._wrap(self.data + _d(o))

    __radd__ = __add__

    def __neg__(self):
        return self._wrap(-self.data)

    def __sub__(self, o):
        return self._wrap(self.data - _d(o))

    def __rsub__(self, o):
        return self._wrap(_d(o) - self.data)

    def __mul__(self, o):
        return self._wrap(self.data * _d(o))

    __rmul__ = __mul__

    def __truediv__(self, o):
        return self._wrap(self.data / _d(o))

    def __rtruediv__(self, o):
        return self._wrap(_d(o) / self.data)

    def __pow__(self, e):
        return self._wrap(self.data**e)

    def __matmul__(self, o):
        return self._wrap(self.data @ _d(o))

    def exp(self):
        return self._wrap(np.exp(self.data))

    def log(self):
        return self._wrap(np.log(self.data))

    def relu(self):
        return self._wrap(self.data * (self.data > 0))

    def tanh(self):
        return self._wrap(np.tanh(self.data))

    def sigmoid(self):
        return self._wrap(1.0 / (1.0 + np.exp(-self.data)))

    def sum(self, axis=None, keepdims=False):
        return self._wrap(self.data.sum(axis=axis, keepdims=keepdims))

    def mean(self, axis=None, keepdims=False):
        return self._wrap(self.data.mean(axis=axis, keepdims=keepdims))

    def max(self, axis=None, keepdims=False):
        return self._wrap(self.data.max(axis=axis, keepdims=keepdims))

    def reshape(self, *shape):
        return self._wrap(self.data.reshape(*shape))

    def transpose(self, *axes):
        return self._wrap(self.data.transpose(axes or None))

    def take(self, indices):
        return self._wrap(self.data[np.asarray(indices, dtype=np.int64)])

    def concat(self, others, axis=-1):
        return self._wrap(
            np.concatenate([self.data] + [_d(o) for o in others], axis=axis)
        )


def _d(o):
    return o.data if isinstance(o, _NumpyNode) else o


def _execute(tensor_cls, leaves, instrs, consumers):
    """Run a program on an engine; returns (scalar_out, leaf_tensors)."""
    nodes = [tensor_cls(a.copy(), requires_grad=True) for a in leaves]
    for op, ids, kwargs in instrs:
        nodes.append(OPS[op](*[nodes[i] for i in ids], **kwargs))
    # Finalize: reduce every never-consumed node to a scalar and chain-add
    # (each node thereby gains exactly one more consumer).
    total = None
    for i, node in enumerate(nodes):
        if consumers[i] == 0:
            term = node.sum()
            total = term if total is None else total + term
    total.backward()
    return total, nodes[: len(leaves)]


def _run_both(seed, **gen_kw):
    leaves, instrs, consumers = _gen_program(seed, **gen_kw)
    got_out, got_leaves = _execute(Tensor, leaves, instrs, consumers)
    ref_out, ref_leaves = _execute(ReferenceTensor, leaves, instrs, consumers)
    return got_out, got_leaves, ref_out, ref_leaves


class TestRandomizedBitIdentity:
    @pytest.mark.parametrize("seed", range(60))
    def test_gradients_bit_identical_with_model_like_fanout(self, seed):
        got_out, got_leaves, ref_out, ref_leaves = _run_both(seed)
        assert got_out.data.tobytes() == ref_out.data.tobytes()
        for g, r in zip(got_leaves, ref_leaves):
            assert r.grad is not None and g.grad is not None
            assert g.grad.shape == r.grad.shape
            assert g.grad.tobytes() == r.grad.tobytes(), f"leaf grad bits differ"

    @pytest.mark.parametrize("seed", range(20))
    def test_unrestricted_fanout_matches_to_reassociation(self, seed):
        got_out, got_leaves, ref_out, ref_leaves = _run_both(
            seed, steps=18, max_consumers=5
        )
        assert got_out.data.tobytes() == ref_out.data.tobytes()
        for g, r in zip(got_leaves, ref_leaves):
            np.testing.assert_allclose(g.grad, r.grad, rtol=1e-12, atol=1e-12)


class TestDirectedPrimitiveBitIdentity:
    """Deterministic per-primitive pins on adversarial inputs."""

    CASES = {
        "broadcast_add": (lambda a, b: (a + b).sum(), [(3, 1, 4), (5, 1)]),
        "broadcast_mul": (lambda a, b: (a * b).sum(), [(2, 3, 4), (4,)]),
        "broadcast_sub": (lambda a, b: (a - b).sum(), [(3, 4), (3, 1)]),
        "broadcast_div": (lambda a, b: (a / (b * b + 0.5)).sum(), [(3, 4), (4,)]),
        "scalar_rsub_rdiv": (
            lambda a, b: (2.0 - a + 1.0 / (b * b + 0.5)).sum(),
            [(4,), (4,)],
        ),
        "pow_neg_base": (lambda a, b: (a**3 + b**2).sum(), [(5,), (5,)]),
        "matmul_batched": (lambda a, b: (a @ b).sum(), [(2, 3, 4), (4, 5)]),
        "nonlinearities": (
            lambda a, b: (a.relu() + a.tanh() + b.sigmoid() + b.exp()).sum(),
            [(6,), (6,)],
        ),
        "log_domain": (lambda a, b: ((a * a + 0.5).log() + b).sum(), [(4,), (4,)]),
        "sum_axes": (
            lambda a, b: (a.sum(axis=1) * b.sum(axis=1, keepdims=True).reshape(-1)).sum(),
            [(3, 4), (3, 4)],
        ),
        "mean": (lambda a, b: (a.mean(axis=1) + b.mean()).sum(), [(3, 4), (2, 2)]),
        "reshape_transpose": (
            lambda a, b: (a.reshape(6).concat([b.transpose(1, 0).reshape(6)], axis=0)).sum(),
            [(2, 3), (3, 2)],
        ),
        "diamond_reuse": (lambda a, b: ((a * b) + (a * b)).sum(), [(3, 3), (3, 3)]),
        "self_mul": (lambda a, b: (a * a + b).sum(), [(4,), (4,)]),
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_case(self, name):
        build, shapes = self.CASES[name]
        rng = np.random.default_rng(hash(name) % (2**32))
        arrays = [rng.normal(size=s) for s in shapes]
        got = [Tensor(a.copy(), requires_grad=True) for a in arrays]
        ref = [ReferenceTensor(a.copy(), requires_grad=True) for a in arrays]
        build(*got).backward()
        build(*ref).backward()
        for g, r in zip(got, ref):
            assert g.grad.tobytes() == r.grad.tobytes()

    def test_max_tie_routing_identical(self):
        # All-equal rows: gradient must land on the first argmax only, in
        # both engines, with identical bits.
        data = np.array([[1.0, 1.0, 1.0], [2.0, 0.5, 2.0], [0.0, 3.0, 3.0]])
        g = Tensor(data.copy(), requires_grad=True)
        r = ReferenceTensor(data.copy(), requires_grad=True)
        g.max(axis=1).sum().backward()
        r.max(axis=1).sum().backward()
        assert g.grad.tobytes() == r.grad.tobytes()
        np.testing.assert_array_equal(
            g.grad, [[1, 0, 0], [1, 0, 0], [0, 1, 0]]
        )

    def test_gather_repeated_indices_identical(self):
        data = np.arange(12.0).reshape(4, 3)
        idx = np.array([[0, 0], [3, 0]])
        g = Tensor(data.copy(), requires_grad=True)
        r = ReferenceTensor(data.copy(), requires_grad=True)
        (g.take(idx) * 2.0).sum().backward()
        (r.take(idx) * 2.0).sum().backward()
        assert g.grad.tobytes() == r.grad.tobytes()
        assert g.grad[0, 0] == 6.0  # three gathers of row 0


class TestGatherRowsPrimitive:
    """gather_rows (batched gather) vs. looping take per batch row."""

    def test_matches_per_sample_take_bitwise(self):
        rng = np.random.default_rng(5)
        feats = rng.normal(size=(3, 6, 4))
        idx = rng.integers(0, 6, size=(3, 5))

        stacked = Tensor(feats.copy(), requires_grad=True)
        out = stacked.gather_rows(idx)
        (out * out).sum().backward()

        per = [Tensor(feats[b].copy(), requires_grad=True) for b in range(3)]
        for b in range(3):
            o = per[b].take(idx[b])
            (o * o).sum().backward()
            assert out.data[b].tobytes() == o.data.tobytes()
            assert stacked.grad[b].tobytes() == per[b].grad.tobytes()

    def test_leading_dim_mismatch_rejected(self):
        t = Tensor(np.zeros((2, 4, 3)), requires_grad=True)
        with pytest.raises(ValueError):
            t.gather_rows(np.zeros((3, 2), dtype=np.int64))

    def test_unbatched_matches_take(self):
        rng = np.random.default_rng(9)
        feats = rng.normal(size=(6, 4))
        idx = np.array([5, 0, 0, 2])
        a = Tensor(feats.copy(), requires_grad=True)
        b = Tensor(feats.copy(), requires_grad=True)
        a.gather_rows(idx).sum().backward()
        b.take(idx).sum().backward()
        assert a.grad.tobytes() == b.grad.tobytes()


class TestGraphRelease:
    @pytest.fixture(autouse=True)
    def _clean_tape(self):
        # Other test modules legitimately forward without backward (eval-mode
        # comparisons outside no_grad), leaving entries on the module-level
        # tape.  These tests assert absolute tape lengths, so they need a
        # clean baseline regardless of suite ordering.
        reset_tape()
        yield

    def test_tape_empty_after_backward(self):
        x = Tensor(np.ones((3, 3)), requires_grad=True)
        ((x * 2.0).relu().sum()).backward()
        assert tape_length() == 0

    def test_unreachable_graph_survives_foreign_backward(self):
        x = Tensor(np.ones(3), requires_grad=True)
        kept = (x * 3.0).sum()  # graph 1, not yet backpropagated
        y = Tensor(np.full(3, 2.0), requires_grad=True)
        (y * y).sum().backward()  # graph 2 frees only its own entries
        assert tape_length() > 0
        kept.backward()
        assert tape_length() == 0
        np.testing.assert_array_equal(x.grad, 3.0)

    def test_no_grad_records_nothing(self):
        x = Tensor(np.ones(4), requires_grad=True)
        with no_grad():
            (x * 2.0).sum()
        assert tape_length() == 0

    def test_reference_engine_releases_graph(self):
        x = ReferenceTensor(np.ones(3), requires_grad=True)
        y = (x * 2.0).sum()
        mid = y
        y.backward()
        assert mid._parents == () and mid._backward_fn is None

    def test_reference_no_grad_blocks_graph(self):
        x = ReferenceTensor(np.ones(3), requires_grad=True)
        with reference_no_grad():
            y = (x * 2.0).sum()
        assert not y.requires_grad

    def test_trained_epoch_retains_no_op_graph(self):
        from repro.core import ApproxSetting
        from repro.geometry import ShapeClassificationDataset
        from repro.models import PointNetPPClassifier
        from repro.training import ClassificationTrainer, FixedSetting

        data = ShapeClassificationDataset(
            size=4, num_points=64, seed=0, occlusion=0.0, noise=0.01, rotate=False
        )
        model = PointNetPPClassifier(data.num_classes, np.random.default_rng(3))
        trainer = ClassificationTrainer(
            model, FixedSetting(ApproxSetting(top_height=2, elision_height=None)),
            lr=2e-3, seed=7,
        )
        trainer.train(data, epochs=1)
        assert tape_length() == 0
        for p in model.parameters():
            assert not p._interior
