"""Tests for the GPU analytic baseline models."""

import numpy as np
import pytest

from repro.accel import (
    GpuCoefficients,
    GpuModel,
    NeighborSearchEngine,
    PointCloudAccelerator,
    evaluation_hardware,
    evaluation_networks,
    gpu_network_result,
    make_mesorasi,
    tigris_gpu_network_result,
    workload_points,
)
from repro.core import ApproxSetting


@pytest.fixture(scope="module")
def mesorasi_run():
    hw = evaluation_hardware()
    spec = evaluation_networks()["PointNet++ (c)"]
    pts = workload_points("PointNet++ (c)")
    return make_mesorasi(hw).run_network(spec, pts, ApproxSetting(0, None))


class TestGpuModel:
    def test_search_costs_scale_with_visits(self):
        gpu = GpuModel()
        c1, e1 = gpu.neighbor_search(1000)
        c2, e2 = gpu.neighbor_search(2000)
        assert c2 == 2 * c1
        assert e2.total == pytest.approx(2 * e1.total)

    def test_feature_costs_scale_with_macs(self):
        gpu = GpuModel()
        c1, e1 = gpu.feature_computation(10_000)
        c2, e2 = gpu.feature_computation(20_000)
        assert c2 == 2 * c1
        assert e2.total == pytest.approx(2 * e1.total)

    def test_coefficients_are_worse_than_accelerator(self):
        c = GpuCoefficients()
        # GPU MAC energy must exceed the systolic array's 0.5 pJ/MAC.
        assert c.e_mac > 0.5
        # GPU traversal must be slower than the PE's 1 visit/cycle.
        assert c.cycles_per_visit > 1.0

    def test_gpu_energy_dominated_by_dram_or_compute(self, mesorasi_run):
        _, energy = gpu_network_result(mesorasi_run)
        assert energy > 0

    def test_ordering_gpu_worst(self, mesorasi_run):
        gpu_cycles, gpu_energy = gpu_network_result(mesorasi_run)
        tg_cycles, tg_energy = tigris_gpu_network_result(mesorasi_run)
        accel_energy = mesorasi_run.energy.total
        # Paper's ordering: GPU > Tigris+GPU > Mesorasi in energy.
        assert gpu_energy > tg_energy > accel_energy
        # Offloading feature computation to the accelerator-class search
        # engine cannot make things slower than full-GPU.
        assert tg_cycles <= gpu_cycles
