"""Tests for layers, losses, optimizers, and module machinery."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    Adam,
    BatchNorm,
    Dropout,
    Linear,
    Module,
    Parameter,
    ReLU,
    SGD,
    Sequential,
    Tensor,
    huber_loss,
    log_softmax,
    mse_loss,
    softmax_cross_entropy,
)


def rng():
    return np.random.default_rng(0)


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 8, rng())
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 8)

    def test_shared_mlp_over_leading_axes(self):
        layer = Linear(4, 8, rng())
        out = layer(Tensor(np.ones((2, 7, 4))))
        assert out.shape == (2, 7, 8)

    def test_rejects_wrong_width(self):
        layer = Linear(4, 8, rng())
        with pytest.raises(ValueError):
            layer(Tensor(np.ones((5, 3))))

    def test_gradients_reach_parameters(self):
        layer = Linear(3, 2, rng())
        loss = (layer(Tensor(np.ones((4, 3)))) ** 2).sum()
        loss.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestBatchNorm:
    def test_normalizes_training_batch(self):
        bn = BatchNorm(4)
        x = Tensor(np.random.default_rng(1).normal(5.0, 3.0, size=(64, 4)))
        out = bn(x)
        assert np.allclose(out.data.mean(axis=0), 0.0, atol=1e-6)
        assert np.allclose(out.data.std(axis=0), 1.0, atol=1e-2)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm(2, momentum=1.0)
        x = np.random.default_rng(2).normal(3.0, 2.0, size=(256, 2))
        bn(Tensor(x))  # one training pass with momentum 1 adopts batch stats
        bn.eval()
        out = bn(Tensor(x))
        assert np.allclose(out.data.mean(axis=0), 0.0, atol=1e-2)

    def test_differentiable(self):
        bn = BatchNorm(3)
        x = Tensor(np.random.default_rng(3).normal(size=(8, 3)), requires_grad=True)
        bn(x).sum().backward()
        assert x.grad is not None
        assert bn.gamma.grad is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchNorm(0)
        with pytest.raises(ValueError):
            BatchNorm(4, momentum=0.0)


class TestDropout:
    def test_identity_at_eval(self):
        d = Dropout(0.5)
        d.eval()
        x = np.ones((10, 10))
        assert np.array_equal(d(Tensor(x)).data, x)

    def test_scales_at_train(self):
        d = Dropout(0.5, rng=np.random.default_rng(0))
        out = d(Tensor(np.ones((100, 100))))
        # Inverted dropout preserves the expectation.
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_default_layers_draw_independent_masks(self):
        # Regression: default-constructed layers each used to build their
        # own default_rng(0), so stacked dropout layers masked identical
        # positions every step (perfectly correlated masking).
        a, b = Dropout(0.5), Dropout(0.5)
        x = Tensor(np.ones((64, 64)))
        assert not np.array_equal(a(x).data, b(x).data)

    def test_explicit_rng_still_reproducible(self):
        x = Tensor(np.ones((32, 32)))
        out1 = Dropout(0.5, rng=np.random.default_rng(7))(x)
        out2 = Dropout(0.5, rng=np.random.default_rng(7))(x)
        assert np.array_equal(out1.data, out2.data)


class TestSequentialAndMLP:
    def test_sequential_composes(self):
        net = Sequential(Linear(3, 5, rng()), ReLU(), Linear(5, 2, rng()))
        out = net(Tensor(np.ones((4, 3))))
        assert out.shape == (4, 2)
        assert len(net) == 3

    def test_mlp_builder(self):
        net = MLP([3, 16, 8], rng())
        out = net(Tensor(np.ones((4, 3))))
        assert out.shape == (4, 8)

    def test_mlp_no_final_activation(self):
        net = MLP([3, 16, 8], rng(), final_activation=False)
        out = net(Tensor(np.random.default_rng(1).normal(size=(40, 3))))
        assert (out.data < 0).any()  # logits can be negative

    def test_mlp_needs_two_widths(self):
        with pytest.raises(ValueError):
            MLP([3], rng())


class TestModuleMachinery:
    def make(self):
        return Sequential(Linear(3, 4, rng()), ReLU(), Linear(4, 2, rng()))

    def test_parameters_found_in_lists(self):
        net = self.make()
        assert len(net.parameters()) == 4  # 2 weights + 2 biases

    def test_state_dict_roundtrip(self):
        net = self.make()
        state = net.state_dict()
        net2 = self.make()
        net2.load_state_dict(state)
        for (n1, p1), (n2, p2) in zip(net.named_parameters(), net2.named_parameters()):
            assert n1 == n2
            assert np.array_equal(p1.data, p2.data)

    def test_state_dict_mismatch_raises(self):
        net = self.make()
        with pytest.raises(KeyError):
            net.load_state_dict({"bogus": np.ones(3)})

    def test_train_eval_propagates(self):
        net = self.make()
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_zero_grad(self):
        net = self.make()
        (net(Tensor(np.ones((2, 3)))) ** 2).sum().backward()
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestLosses:
    def test_log_softmax_normalizes(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(5, 4)))
        logp = log_softmax(logits)
        assert np.allclose(np.exp(logp.data).sum(axis=-1), 1.0)

    def test_cross_entropy_perfect_prediction(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((3, 4)))
        loss = softmax_cross_entropy(logits, np.array([0, 1, 2]))
        assert loss.item() == pytest.approx(np.log(4))

    def test_cross_entropy_segmentation_shape(self):
        logits = Tensor(np.zeros((2, 5, 3)))
        labels = np.zeros((2, 5), dtype=int)
        assert softmax_cross_entropy(logits, labels).item() == pytest.approx(np.log(3))

    def test_cross_entropy_shape_mismatch(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(Tensor(np.zeros((2, 3))), np.zeros(3, dtype=int))

    def test_mse(self):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = mse_loss(pred, np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)
        loss.backward()
        assert np.allclose(pred.grad, [1.0, 2.0])

    def test_huber_small_equals_half_mse(self):
        pred = Tensor(np.array([0.5]), requires_grad=True)
        assert huber_loss(pred, np.array([0.0])).item() == pytest.approx(0.125)

    def test_huber_large_is_linear(self):
        pred = Tensor(np.array([10.0]))
        assert huber_loss(pred, np.array([0.0])).item() == pytest.approx(9.5)


class TestOptimizers:
    def quadratic_problem(self):
        w = Parameter(np.array([5.0, -3.0]))
        return w

    def test_sgd_converges_on_quadratic(self):
        w = self.quadratic_problem()
        opt = SGD([w], lr=0.1, momentum=0.5)
        for _ in range(100):
            opt.zero_grad()
            loss = (w * w).sum()
            loss.backward()
            opt.step()
        assert np.abs(w.data).max() < 1e-3

    def test_adam_converges_on_quadratic(self):
        w = self.quadratic_problem()
        opt = Adam([w], lr=0.3)
        for _ in range(200):
            opt.zero_grad()
            (w * w).sum().backward()
            opt.step()
        assert np.abs(w.data).max() < 1e-2

    def test_weight_decay_shrinks(self):
        w = Parameter(np.array([1.0]))
        opt = SGD([w], lr=0.1, momentum=0.0, weight_decay=1.0)
        opt.zero_grad()
        (w * 0.0).sum().backward()
        opt.step()
        assert w.data[0] < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=-1)
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], betas=(1.0, 0.9))

    def test_training_loop_learns_xor(self):
        # End-to-end sanity: a 2-layer net learns XOR.
        rng_local = np.random.default_rng(4)
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([0, 1, 1, 0])
        net = Sequential(
            Linear(2, 8, rng_local), ReLU(), Linear(8, 2, rng_local)
        )
        opt = Adam(net.parameters(), lr=0.05)
        for _ in range(300):
            opt.zero_grad()
            loss = softmax_cross_entropy(net(Tensor(x)), y)
            loss.backward()
            opt.step()
        pred = net(Tensor(x)).data.argmax(axis=1)
        assert np.array_equal(pred, y)
