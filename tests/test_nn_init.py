"""Tests for weight initializers."""

import numpy as np
import pytest

from repro.nn import kaiming_uniform, xavier_uniform, zeros


class TestInitializers:
    def test_kaiming_bounds(self):
        rng = np.random.default_rng(0)
        w = kaiming_uniform(rng, 64, 32)
        bound = np.sqrt(6.0 / 64)
        assert w.shape == (64, 32)
        assert np.abs(w).max() <= bound

    def test_xavier_bounds(self):
        rng = np.random.default_rng(0)
        w = xavier_uniform(rng, 64, 32)
        bound = np.sqrt(6.0 / 96)
        assert np.abs(w).max() <= bound

    def test_deterministic_given_rng(self):
        a = kaiming_uniform(np.random.default_rng(7), 8, 8)
        b = kaiming_uniform(np.random.default_rng(7), 8, 8)
        assert np.array_equal(a, b)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            kaiming_uniform(rng, 0, 4)
        with pytest.raises(ValueError):
            xavier_uniform(rng, 4, -1)

    def test_zeros(self):
        z = zeros(3, 4)
        assert z.shape == (3, 4)
        assert (z == 0).all()

    def test_variance_scales_with_fan_in(self):
        rng = np.random.default_rng(1)
        wide = kaiming_uniform(rng, 1024, 64)
        narrow = kaiming_uniform(rng, 16, 64)
        assert wide.std() < narrow.std()
