"""Sharded multi-process serving tier: parity, recovery, and stats suite.

The sharded tier's one hard contract mirrors the single-process service:
every result a worker shard demuxes must be bit-identical to serving the
request alone (and therefore to the single-process ``QueryService``, whose
parity the serving suite already pins).  On top of that this suite
exercises what only the multi-process tier has: the ``register`` digest
handle fast path, the per-shard stats roll-up, and — RD-MCL style — a
worker killed mid-flush being detected, respawned, re-registered, and its
orphaned requests requeued, with the flush still settling every ticket.
"""

import threading

import numpy as np
import pytest

from repro.kdtree import build_kdtree
from repro.runtime import BatchedBallQuery, WorkerProcess
from repro.serve import (
    QueryService,
    ShardedQueryService,
    replay_trace_sharded,
    synthetic_trace,
)


def assert_ticket_parity(requests, tickets):
    """Every settled ticket equals its request served alone."""
    for (points, queries, radius, k), ticket in zip(requests, tickets):
        got_idx, got_cnt = ticket.result()
        engine = BatchedBallQuery(build_kdtree(points))
        want_idx, want_cnt = engine.query(queries, radius, k)
        np.testing.assert_array_equal(got_idx, want_idx)
        np.testing.assert_array_equal(got_cnt, want_cnt)


def draw_requests(rng, clouds, n_requests, max_queries=30):
    requests = []
    for _ in range(n_requests):
        cloud = clouds[int(rng.integers(len(clouds)))]
        m = int(rng.integers(1, max_queries))
        queries = cloud[rng.integers(0, len(cloud), size=m)] + rng.normal(
            scale=0.05, size=(m, 3)
        )
        requests.append(
            (cloud, queries, float(rng.uniform(0.1, 0.5)), int(rng.integers(1, 17)))
        )
    return requests


class TestShardedParity:
    def test_randomized_mixed_cloud_parity(self, test_seed):
        # The acceptance criterion: randomized mixed-cloud traces served
        # by the sharded tier are bit-identical to the single-process
        # service (same trace, same arrival order).
        for offset in range(2):
            rng = np.random.default_rng(test_seed + offset)
            clouds = [
                rng.normal(size=(int(rng.integers(50, 200)), 3)) for _ in range(4)
            ]
            clouds.append(clouds[0].copy())  # duplicate content, one digest
            requests = draw_requests(rng, clouds, n_requests=14)
            single = QueryService()
            single_tickets = [single.submit(*r) for r in requests]
            single.flush()
            with ShardedQueryService(num_workers=2) as sharded:
                tickets = [sharded.submit(*r) for r in requests]
                sharded.flush()
                for st, t in zip(single_tickets, tickets):
                    np.testing.assert_array_equal(st.result()[0], t.result()[0])
                    np.testing.assert_array_equal(st.result()[1], t.result()[1])
            assert_ticket_parity(requests, tickets)

    def test_same_cloud_requests_still_coalesce_on_their_shard(self, rng):
        pts = rng.normal(size=(100, 3))
        with ShardedQueryService(num_workers=3) as service:
            tickets = [
                service.submit(pts, pts[: 3 + i], 0.2 + 0.05 * i, 2 + i)
                for i in range(6)
            ]
            assert service.pending == 6
            assert service.flush() == 1  # one merged sweep, one shard
            assert service.pending == 0
        assert service.stats.sweeps == 1
        assert service.stats.requests == 6
        assert service.stats.max_coalesced == 6
        assert service.stats.coalesce_factor == 6.0
        # exactly one shard did all the work
        active = [s for s in service.stats.shards if s.requests]
        assert len(active) == 1 and active[0].flushes == 1
        assert_ticket_parity(
            [(pts, pts[: 3 + i], 0.2 + 0.05 * i, 2 + i) for i in range(6)], tickets
        )


class TestRegisterHandles:
    def test_register_returns_stable_digest_handle(self, rng):
        pts = rng.normal(size=(80, 3))
        with ShardedQueryService(num_workers=2) as service:
            handle = service.register(pts)
            assert service.register(pts.copy()) == handle  # content-keyed
            ticket = service.submit_handle(handle, pts[:5], 0.3, 4)
            service.flush()
            assert_ticket_parity([(pts, pts[:5], 0.3, 4)], [ticket])

    def test_submit_by_points_uses_registered_handle(self, rng):
        # A submit whose points hash to a registered digest must ship no
        # geometry (the job payload carries None).
        pts = rng.normal(size=(80, 3))
        with ShardedQueryService(num_workers=2) as service:
            service.register(pts)
            service.submit(pts, pts[:4], 0.3, 4)
            assert service._pending[0].points is None
            unregistered = pts + 3.0
            service.submit(unregistered, pts[:4], 0.3, 4)
            assert service._pending[1].points is not None
            assert service.flush() == 2

    def test_unknown_handle_rejected_at_dispatch(self, rng):
        with ShardedQueryService(num_workers=2) as service:
            with pytest.raises(KeyError, match="register"):
                service.submit_handle("deadbeef" * 4, np.zeros((1, 3)), 0.3, 4)
            assert service.pending == 0

    def test_register_validates_like_submit(self, rng):
        with ShardedQueryService(num_workers=2) as service:
            with pytest.raises(ValueError):
                service.register(np.zeros((0, 3)))
            bad = np.ones((10, 3))
            bad[3, 1] = np.nan
            with pytest.raises(ValueError, match="finite"):
                service.register(bad)

    def test_dispatcher_validation_mirrors_single_process(self, rng):
        pts = rng.normal(size=(30, 3))
        nan_queries = np.zeros((2, 3))
        nan_queries[1, 0] = np.inf
        with ShardedQueryService(num_workers=2) as service:
            for args in [
                (pts, pts[:2], -0.5, 4),
                (pts, pts[:2], np.nan, 4),
                (pts, pts[:2], 0.5, 0),
                (pts, nan_queries, 0.5, 4),
            ]:
                with pytest.raises(ValueError):
                    service.submit(*args)
            assert service.pending == 0  # bad requests never enqueue


class TestDeadWorkerRecovery:
    def test_worker_killed_mid_flush_is_respawned_and_requeued(self, rng):
        # The RD-MCL discipline end to end: park shard 0 in a long sleep
        # so its dispatched batch sits unanswered, SIGKILL it mid-flush,
        # and require the dispatcher to respawn the shard, re-register its
        # clouds, requeue the orphaned requests, and settle every ticket
        # with results bit-identical to serving each request alone.
        with ShardedQueryService(num_workers=2, poll_interval=0.02) as service:
            by_slot = {0: [], 1: []}
            while min(len(v) for v in by_slot.values()) < 2:
                cloud = rng.normal(size=(60, 3))
                by_slot[service._slot_for(service.register(cloud))].append(cloud)
            clouds = by_slot[0] + by_slot[1]
            requests = [(c, c[:5], 0.3, 4) for c in clouds for _ in range(2)]
            tickets = [service.submit(*r) for r in requests]
            service._workers[0].send(("sleep", 60.0))
            killer = threading.Timer(0.3, service._workers[0].kill)
            killer.start()
            try:
                service.flush()
            finally:
                killer.cancel()
            assert service.stats.respawns == 1
            assert service.stats.requeued_requests == 2 * len(by_slot[0])
            assert all(t.done for t in tickets)
            assert_ticket_parity(requests, tickets)
            # The fresh incarnation owns its re-registered clouds: a
            # handle-only submit for a slot-0 cloud must serve cleanly.
            again = service.submit(clouds[0], clouds[0][:3], 0.25, 4)
            assert service._pending[0].points is None
            service.flush()
            assert again.error is None
            assert_ticket_parity([(clouds[0], clouds[0][:3], 0.25, 4)], [again])
        assert service.stats.failed_requests == 0

    def test_worker_dead_between_flushes_is_respawned_on_dispatch(self, rng):
        pts = rng.normal(size=(50, 3))
        with ShardedQueryService(num_workers=1, poll_interval=0.02) as service:
            handle = service.register(pts)
            first = service.submit_handle(handle, pts[:4], 0.3, 4)
            service.flush()
            assert first.error is None
            service._workers[0].kill()
            second = service.submit_handle(handle, pts[:6], 0.2, 8)
            service.flush()  # dispatch-time liveness check respawns
            assert service.stats.respawns == 1
            assert service.stats.requeued_requests == 0  # nothing in flight
            assert_ticket_parity([(pts, pts[:6], 0.2, 8)], [second])


class TestShardedLifecycleAndStats:
    def test_stats_rollup_across_shards(self, rng):
        clouds = [rng.normal(size=(60, 3)) for _ in range(5)]
        requests = [(c, c[:4], 0.3, 4) for c in clouds for _ in range(2)]
        with ShardedQueryService(num_workers=2) as service:
            tickets = [service.submit(*r) for r in requests]
            executed = service.flush()
        stats = service.stats
        assert executed == 5  # one merged sweep per distinct cloud
        assert stats.sweeps == 5
        assert stats.requests == 10
        assert stats.queries == 40
        assert stats.coalesce_factor == 2.0
        assert stats.max_coalesced == 2
        assert stats.failed_requests == 0
        assert stats.mean_wait > 0 and stats.wait_time > 0
        assert stats.serve_time > 0 and stats.throughput > 0
        assert len(stats.shards) == 2
        assert sum(s.requests for s in stats.shards) == 10
        assert all(t.done for t in tickets)

    def test_flush_empty_is_noop_and_close_is_idempotent(self):
        service = ShardedQueryService(num_workers=1)
        assert service.flush() == 0
        service.close()
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(np.zeros((4, 3)), np.zeros((1, 3)), 0.3, 4)
        with pytest.raises(RuntimeError, match="closed"):
            service.flush()

    def test_close_settles_undispatched_tickets(self, rng):
        pts = rng.normal(size=(30, 3))
        service = ShardedQueryService(num_workers=1)
        ticket = service.submit(pts, pts[:2], 0.3, 4)
        service.close()
        assert ticket.done and ticket.error is not None
        with pytest.raises(RuntimeError, match="closed before flush"):
            ticket.result()

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ShardedQueryService(num_workers=0)
        with pytest.raises(ValueError):
            ShardedQueryService(num_workers=1, heartbeat_timeout=0)
        with pytest.raises(ValueError):
            ShardedQueryService(num_workers=1, poll_interval=0)


class TestShardedTraceReplay:
    def test_sharded_replay_is_identical(self):
        trace = synthetic_trace(
            num_requests=16, num_clouds=3, cloud_size=128,
            queries_per_request=8, seed=5,
        )
        report = replay_trace_sharded(trace, num_workers=2)
        assert report.results_identical
        assert report.requests == 16
        assert report.num_workers == 2
        assert report.stats.requests == 16
        assert report.stats.failed_requests == 0
        assert report.stats.coalesce_factor > 1.0
        assert report.speedup > 0


def _echo_worker(inbox, outbox, heartbeat):
    """Module-level worker target for the WorkerProcess lifecycle test."""
    import queue as queue_mod
    import time as time_mod

    heartbeat.value = time_mod.monotonic()
    while True:
        try:
            message = inbox.get(timeout=0.05)
        except queue_mod.Empty:
            heartbeat.value = time_mod.monotonic()
            continue
        if message[0] == "stop":
            break
        outbox.put(("echo", message))
        heartbeat.value = time_mod.monotonic()


class TestWorkerProcess:
    def test_lifecycle_heartbeat_and_respawn(self):
        worker = WorkerProcess(_echo_worker, name="echo")
        assert not worker.is_alive()
        assert worker.heartbeat_age() == float("inf")
        worker.start()
        try:
            assert worker.is_alive()
            assert worker.generation == 1
            assert worker.heartbeat_age() < 10.0  # spawn counts as a beat
            worker.send(("ping", 1))
            assert worker.receive(timeout=10.0) == ("echo", ("ping", 1))
            with pytest.raises(RuntimeError, match="already running"):
                worker.start()
            worker.kill()
            assert not worker.is_alive()
            worker.respawn()
            assert worker.is_alive() and worker.generation == 2
            worker.send(("ping", 2))
            # The respawn must survive the nastiest kill timing: the old
            # incarnation died microseconds after a put, possibly holding
            # its outbox write lock — which is exactly why mailboxes are
            # per-incarnation and this receive cannot deadlock.
            assert worker.receive(timeout=10.0) == ("echo", ("ping", 2))
        finally:
            worker.stop()
        assert not worker.is_alive()
