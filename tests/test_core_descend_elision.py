"""Tests for the descend-on-conflict elision policy (paper Sec. 4.2's
future-work optimization) and the ancestor machinery behind it."""

import numpy as np
import pytest

from repro.core import ApproxSetting, TreeBufferBanking
from repro.core.approx_search import run_subtree_lockstep
from repro.kdtree import SubtreeSearch, build_kdtree
from repro.memsim import SramStats


def tree_of(n=255, seed=0):
    return build_kdtree(np.random.default_rng(seed).normal(size=(n, 3)))


class TestIsDescendant:
    def test_self_is_descendant(self):
        tree = tree_of(31)
        assert tree.is_descendant(5, 5)

    def test_children_are_descendants(self):
        tree = tree_of(31)
        l, r = tree.children(0)
        assert tree.is_descendant(l, 0)
        assert tree.is_descendant(r, 0)
        assert not tree.is_descendant(0, l)

    def test_siblings_are_not(self):
        tree = tree_of(31)
        l, r = tree.children(0)
        assert not tree.is_descendant(l, r)
        assert not tree.is_descendant(r, l)

    def test_matches_subtree_nodes(self):
        tree = tree_of(63, seed=1)
        for root in (0, 1, 2, 5):
            members = set(tree.subtree_nodes(root).tolist())
            for node in range(tree.num_nodes):
                assert tree.is_descendant(node, root) == (node in members)


class TestSubstituteAdvance:
    def test_substitute_continues_search(self):
        tree = tree_of(127, seed=2)
        q = tree.points[0]
        machine = SubtreeSearch(tree, q, 10.0, root=0, elide_depth=0)
        node = machine.peek()
        child = tree.children(node)[0]
        machine.advance(elide=True, substitute=child)
        assert machine.peek() == child  # traversal continues from the child

    def test_substitute_same_node_rejected(self):
        # A same-address conflict is a broadcast — a *served* fetch the
        # caller advances with elide=False — never an elision.  The old
        # elide=True-with-substitute==node backdoor mislabeled broadcasts
        # with elision semantics and is now an error.
        tree = tree_of(63, seed=3)
        machine = SubtreeSearch(tree, tree.points[0], 10.0, root=0, elide_depth=0)
        node = machine.peek()
        with pytest.raises(RuntimeError, match="broadcast"):
            machine.advance(elide=True, substitute=node)

    def test_substitute_must_be_descendant(self):
        tree = tree_of(63, seed=4)
        machine = SubtreeSearch(tree, tree.points[0], 10.0, root=0, elide_depth=0)
        node = machine.peek()
        l, r = tree.children(node)
        machine.advance()  # visit root; stack now holds children
        top = machine.peek()
        sibling = r if top == l else l
        with pytest.raises(RuntimeError):
            machine.advance(elide=True, substitute=sibling)

    def test_skip_counts_fewer_with_substitute(self):
        tree = tree_of(127, seed=5)
        a = SubtreeSearch(tree, tree.points[0], 10.0, root=0, elide_depth=0)
        b = SubtreeSearch(tree, tree.points[0], 10.0, root=0, elide_depth=0)
        node = a.peek()
        child = tree.children(node)[0]
        a.advance(elide=True)  # full skip
        b.advance(elide=True, substitute=child)  # partial skip
        assert b.stats.nodes_skipped < a.stats.nodes_skipped


class TestDescendPolicyLockstep:
    def _run(self, policy, seed=6):
        tree = tree_of(511, seed=seed)
        rng = np.random.default_rng(seed + 1)
        queries = tree.points[rng.choice(len(tree.points), 64, replace=False)]
        machines = [
            SubtreeSearch(tree, q, 0.6, root=0, max_neighbors=16, elide_depth=2)
            for q in queries
        ]
        slot_map = {int(n): i for i, n in enumerate(tree.subtree_nodes(0))}
        sram = SramStats()
        run_subtree_lockstep(
            machines, slot_map, TreeBufferBanking(4), 8, sram, elide_policy=policy
        )
        visited = sum(m.stats.nodes_visited for m in machines)
        skipped = sum(m.stats.nodes_skipped for m in machines)
        found = sum(len(m.hits) for m in machines)
        return visited, skipped, found

    def test_descend_skips_fewer_nodes(self):
        _, skip_default, found_default = self._run("skip")
        _, skip_descend, found_descend = self._run("descend")
        assert skip_descend < skip_default
        assert found_descend >= found_default  # fewer lost neighbors

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            self._run("drop-everything")
