"""Unit tests for bank-conflict modeling and aggregation elision."""

import numpy as np
import pytest

from repro.core import (
    PointBufferBanking,
    TreeBufferBanking,
    aggregation_conflict_rate,
    apply_aggregation_elision,
)
from repro.memsim import SramStats


class TestBankings:
    def test_tree_slot_mapping(self):
        b = TreeBufferBanking(num_banks=4)
        assert b.bank_of_slot(np.array([0, 1, 4, 5])).tolist() == [0, 1, 0, 1]

    def test_point_mapping(self):
        b = PointBufferBanking(num_banks=16)
        assert b.bank_of_point(np.array([0, 16, 17])).tolist() == [0, 0, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            TreeBufferBanking(0)
        with pytest.raises(ValueError):
            PointBufferBanking(-1)


class TestAggregationElision:
    def test_no_conflict_is_identity(self):
        banking = PointBufferBanking(num_banks=16)
        indices = np.arange(16).reshape(1, 16)  # all distinct banks
        out = apply_aggregation_elision(indices, banking, num_ports=16)
        assert np.array_equal(out, indices)

    def test_conflicting_access_replicates_winner(self):
        banking = PointBufferBanking(num_banks=16)
        # Points 0 and 16 share bank 0; port 0 wins, port 1 observes 0.
        indices = np.array([[0, 16, 2, 3]])
        out = apply_aggregation_elision(indices, banking, num_ports=4)
        assert out.tolist() == [[0, 0, 2, 3]]

    def test_winner_is_first_occurrence(self):
        banking = PointBufferBanking(num_banks=4)
        indices = np.array([[5, 1, 9, 13]])  # banks 1,1,1,1: all collapse to 5
        out = apply_aggregation_elision(indices, banking, num_ports=4)
        assert out.tolist() == [[5, 5, 5, 5]]

    def test_groups_are_independent(self):
        banking = PointBufferBanking(num_banks=4)
        # With 2 ports, groups are (5, 1) and (9, 13): winners 5 and 9.
        indices = np.array([[5, 1, 9, 13]])
        out = apply_aggregation_elision(indices, banking, num_ports=2)
        assert out.tolist() == [[5, 5, 9, 9]]

    def test_output_is_subset_of_row(self):
        rng = np.random.default_rng(0)
        indices = rng.integers(0, 500, size=(40, 16))
        out = apply_aggregation_elision(indices, PointBufferBanking(16), 16)
        for i in range(40):
            assert set(out[i]) <= set(indices[i])

    def test_stats_accumulate(self):
        banking = PointBufferBanking(num_banks=4)
        stats = SramStats()
        apply_aggregation_elision(np.array([[5, 1, 9, 13]]), banking, 4, stats=stats)
        assert stats.accesses == 4
        assert stats.conflicted == 3
        assert stats.elided == 3
        assert stats.broadcasts == 0  # distinct addresses: nothing broadcast
        assert stats.reads_served == 1

    def test_duplicate_ids_broadcast_not_elide(self):
        # Ports 1 and 3 repeat the winner's id (ball_query-style padding):
        # they are served by the winner's broadcast read, keep their own
        # neighbor, and never enter the conflicted/elided ledgers.
        banking = PointBufferBanking(num_banks=4)
        stats = SramStats()
        out = apply_aggregation_elision(
            np.array([[5, 5, 9, 5]]), banking, 4, stats=stats
        )
        assert out.tolist() == [[5, 5, 5, 5]]  # 9 elided, 5s broadcast
        assert stats.broadcasts == 2
        assert stats.conflicted == 1
        assert stats.elided == 1
        assert stats.reads_served == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            apply_aggregation_elision(np.zeros(4, dtype=int), PointBufferBanking(4), 4)
        with pytest.raises(ValueError):
            apply_aggregation_elision(np.zeros((2, 4), dtype=int), PointBufferBanking(4), 0)

    def test_deterministic(self):
        rng = np.random.default_rng(1)
        indices = rng.integers(0, 100, size=(8, 16))
        a = apply_aggregation_elision(indices, PointBufferBanking(16), 16)
        b = apply_aggregation_elision(indices, PointBufferBanking(16), 16)
        assert np.array_equal(a, b)


class TestConflictRate:
    def test_rate_drops_with_more_banks(self):
        rng = np.random.default_rng(2)
        indices = rng.integers(0, 4096, size=(300, 16))
        rates = [
            aggregation_conflict_rate(indices, PointBufferBanking(b), 16)
            for b in (2, 4, 8, 16, 32)
        ]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_paper_fig5_ballpark(self):
        # Random neighbor ids, 16 banks, 16 concurrent requests: the paper
        # measures 38–57% conflict rates on real networks.  Uniform-random
        # ids land in the same regime.
        rng = np.random.default_rng(3)
        indices = rng.integers(0, 10_000, size=(500, 16))
        rate = aggregation_conflict_rate(indices, PointBufferBanking(16), 16)
        assert 0.30 < rate < 0.65

    def test_identical_ids_broadcast_conflict_free(self):
        # An all-duplicate row (a fully padded short row) is one read
        # broadcast to every port: zero conflicts, not 15/16.
        indices = np.full((10, 16), 7)
        rate = aggregation_conflict_rate(indices, PointBufferBanking(16), 16)
        assert rate == 0.0
