"""Smoke tests: every example script runs end to end.

Examples are executed in-process with reduced workloads where they expose
``main()``; the goal is that a user following the README never hits a
broken script.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(name):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


def test_quickstart_runs(capsys):
    _run("quickstart.py")
    out = capsys.readouterr().out
    assert "approximate search" in out
    assert "cycles" in out


@pytest.mark.slow
def test_accelerator_comparison_runs(capsys):
    _run("accelerator_comparison.py")
    out = capsys.readouterr().out
    assert "geomean ANS+BCE speedup" in out


@pytest.mark.slow
def test_lidar_detection_runs(capsys):
    _run("lidar_detection.py")
    out = capsys.readouterr().out
    assert "BEV IoU" in out


@pytest.mark.slow
def test_classification_tradeoff_runs(capsys):
    _run("classification_tradeoff.py")
    out = capsys.readouterr().out
    assert "speedup" in out
