"""Tests for the step-wise traversal machines (TopTreeDescent, SubtreeSearch)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kdtree import (
    SubtreeSearch,
    TopTreeDescent,
    TraversalStats,
    build_kdtree,
    radius_search,
)


def tree_of(n=127, seed=0):
    return build_kdtree(np.random.default_rng(seed).normal(size=(n, 3)))


class TestTopTreeDescent:
    def test_zero_height_is_immediately_done(self):
        tree = tree_of()
        d = TopTreeDescent(tree, np.zeros(3), 0.5, top_height=0)
        assert d.done
        assert d.assigned_root == tree.root
        assert d.peek() == -1

    def test_descends_to_requested_depth(self):
        tree = tree_of()
        d = TopTreeDescent(tree, np.zeros(3), 0.5, top_height=3)
        steps = 0
        while not d.done:
            d.advance()
            steps += 1
        assert steps == 3
        assert tree.depth[d.assigned_root] == 3

    def test_advance_after_done_raises(self):
        tree = tree_of()
        d = TopTreeDescent(tree, np.zeros(3), 0.5, top_height=0)
        with pytest.raises(RuntimeError):
            d.advance()

    def test_rejects_negative_height(self):
        with pytest.raises(ValueError):
            TopTreeDescent(tree_of(), np.zeros(3), 0.5, top_height=-1)

    def test_collects_top_tree_hits(self):
        tree = tree_of(seed=3)
        # Query at the root's point: the root is within any radius.
        q = tree.node_point(tree.root)
        d = TopTreeDescent(tree, q, 0.5, top_height=2)
        while not d.done:
            d.advance()
        assert int(tree.point_id[tree.root]) in d.hits

    def test_stats_count_visits(self):
        tree = tree_of()
        stats = TraversalStats()
        d = TopTreeDescent(tree, np.ones(3), 0.5, top_height=4, stats=stats)
        while not d.done:
            d.advance()
        assert stats.nodes_visited == 4
        assert stats.queries == 1


class TestSubtreeSearch:
    def test_full_tree_matches_radius_search(self):
        tree = tree_of(seed=4)
        q = np.random.default_rng(5).normal(size=3)
        machine = SubtreeSearch(tree, q, 0.6, root=tree.root)
        hits = machine.run_to_completion()
        want = radius_search(tree, q, 0.6)
        assert sorted(hits) == sorted(want)

    def test_restricted_to_subtree(self):
        tree = tree_of(seed=6)
        sub_root = int(tree.left[tree.root])
        members = set(
            int(tree.point_id[n]) for n in tree.subtree_nodes(sub_root)
        )
        q = np.random.default_rng(7).normal(size=3)
        machine = SubtreeSearch(tree, q, 5.0, root=sub_root)
        hits = machine.run_to_completion()
        assert set(hits) <= members

    def test_max_neighbors_stops_early(self):
        tree = tree_of(seed=8)
        q = tree.points.mean(axis=0)
        machine = SubtreeSearch(tree, q, 10.0, root=tree.root, max_neighbors=3)
        hits = machine.run_to_completion()
        assert len(hits) == 3
        assert machine.done

    def test_zero_budget_is_done(self):
        tree = tree_of()
        machine = SubtreeSearch(tree, np.zeros(3), 1.0, root=tree.root, max_neighbors=0)
        assert machine.done

    def test_negative_root_is_done(self):
        tree = tree_of()
        machine = SubtreeSearch(tree, np.zeros(3), 1.0, root=-1)
        assert machine.done

    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError):
            SubtreeSearch(tree_of(), np.zeros(3), 0.0, root=0)

    def test_advance_when_done_raises(self):
        tree = tree_of()
        machine = SubtreeSearch(tree, np.zeros(3), 1.0, root=-1)
        with pytest.raises(RuntimeError):
            machine.advance()

    def test_elide_above_height_raises(self):
        tree = tree_of(seed=9)
        machine = SubtreeSearch(
            tree, np.zeros(3), 1.0, root=tree.root, elide_depth=5
        )
        # Root is at depth 0 < 5: eliding it must be rejected (stall case).
        with pytest.raises(RuntimeError):
            machine.advance(elide=True)

    def test_elide_skips_subtree(self):
        tree = tree_of(seed=10)
        machine = SubtreeSearch(
            tree, np.zeros(3), 10.0, root=tree.root, elide_depth=0
        )
        machine.advance(elide=True)
        assert machine.done
        assert machine.stats.nodes_skipped == tree.num_nodes
        assert machine.hits == []

    def test_would_elide_respects_height(self):
        tree = tree_of(seed=11)
        machine = SubtreeSearch(
            tree, np.zeros(3), 1.0, root=tree.root, elide_depth=2
        )
        assert not machine.would_elide(tree.root)
        deep = tree.nodes_at_depth(3)[0]
        assert machine.would_elide(int(deep))

    def test_no_elide_depth_never_elides(self):
        tree = tree_of(seed=12)
        machine = SubtreeSearch(tree, np.zeros(3), 1.0, root=tree.root)
        assert not machine.would_elide(tree.root)

    def test_trace_recording(self):
        tree = tree_of(seed=13)
        stats = TraversalStats()
        machine = SubtreeSearch(
            tree, np.zeros(3), 0.8, root=tree.root, stats=stats, record_trace=True
        )
        machine.run_to_completion()
        assert len(stats.visit_trace) == stats.nodes_visited


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=100),
    seed=st.integers(min_value=0, max_value=2**31),
    radius=st.floats(min_value=0.1, max_value=2.0),
)
def test_property_machine_equals_functional_search(n, seed, radius):
    """Driving the machine to completion is bit-equal to radius_search."""
    pts = np.random.default_rng(seed).normal(size=(n, 3))
    tree = build_kdtree(pts)
    q = np.random.default_rng(seed + 1).normal(size=3)
    machine = SubtreeSearch(tree, q, radius, root=tree.root)
    assert sorted(machine.run_to_completion()) == sorted(radius_search(tree, q, radius))
