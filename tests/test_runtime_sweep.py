"""SweepRunner: ordering, backend selection, process fan-out."""

import os

import numpy as np
import pytest

from repro.core import ApproxSetting
from repro.kdtree import build_kdtree
from repro.runtime import SweepRunner, batched_ball_query


def _square(x):
    return x * x


def _pid_tag(x):
    return (x, os.getpid())


def _recall_for_radius(args):
    """A realistic sweep point: neighbor counts for one radius setting."""
    seed, radius = args
    rng = np.random.default_rng(seed)
    pts = rng.normal(size=(100, 3))
    _, counts = batched_ball_query(build_kdtree(pts), pts[:16], radius, 8)
    return int(counts.sum())


class TestBackendSelection:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            SweepRunner(backend="threads")

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            SweepRunner(num_workers=0)

    def test_auto_with_one_worker_stays_serial(self):
        runner = SweepRunner(num_workers=1, backend="auto")
        tags = runner.map(_pid_tag, range(4))
        assert all(pid == os.getpid() for _, pid in tags)

    def test_serial_backend_runs_inline(self):
        runner = SweepRunner(num_workers=4, backend="serial")
        tags = runner.map(_pid_tag, range(4))
        assert all(pid == os.getpid() for _, pid in tags)


class TestResults:
    def test_map_preserves_order(self):
        runner = SweepRunner(num_workers=2, backend="process")
        assert runner.map(_square, range(10)) == [x * x for x in range(10)]

    def test_process_backend_uses_workers(self):
        runner = SweepRunner(num_workers=2, backend="process")
        tags = runner.map(_pid_tag, range(6))
        assert [x for x, _ in tags] == list(range(6))
        assert any(pid != os.getpid() for _, pid in tags)

    def test_starmap(self):
        runner = SweepRunner(backend="serial")
        assert runner.starmap(pow, [(2, 3), (3, 2)]) == [8, 9]

    def test_empty_items(self):
        assert SweepRunner(backend="process").map(_square, []) == []

    def test_parallel_matches_serial_on_search_sweep(self, test_seed):
        # The actual use case: a deterministic search sweep must produce
        # identical numbers regardless of worker count.
        sweep = [(test_seed, r) for r in (0.2, 0.4, 0.6, 0.8)]
        serial = SweepRunner(backend="serial").map(_recall_for_radius, sweep)
        parallel = SweepRunner(num_workers=2, backend="process").map(
            _recall_for_radius, sweep
        )
        assert serial == parallel


class TestSettingSweepShape:
    def test_settings_are_picklable_sweep_points(self):
        # ApproxSetting rides through pools as a sweep axis; keep it so.
        import pickle

        s = ApproxSetting(2, 4)
        assert pickle.loads(pickle.dumps(s)) == s
