"""Unit tests for the split-tree structure and configs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ApproxSetting, CrescentHardwareConfig, SplitTree, valid_top_heights
from repro.kdtree import NODE_BYTES, build_kdtree


def tree_of(n, seed=0):
    return build_kdtree(np.random.default_rng(seed).normal(size=(n, 3)))


class TestApproxSetting:
    def test_defaults_are_exact(self):
        s = ApproxSetting()
        assert not s.uses_split_tree
        assert not s.uses_elision

    def test_validation(self):
        with pytest.raises(ValueError):
            ApproxSetting(top_height=-1)
        with pytest.raises(ValueError):
            ApproxSetting(elision_height=-2)

    def test_scaled_to_clamps(self):
        s = ApproxSetting(top_height=10, elision_height=20).scaled_to(6)
        assert s.top_height == 5
        assert s.elision_height == 6

    def test_scaled_keeps_none_elision(self):
        s = ApproxSetting(top_height=2).scaled_to(8)
        assert s.elision_height is None


class TestValidTopHeights:
    def test_paper_equations(self):
        # S = 63 nodes holds a top tree of height <= 6 (2^6-1=63) and
        # requires 2^(H-ht+1)-1 <= 63, i.e. ht >= H - 5.
        lo, hi = valid_top_heights(tree_height=10, tree_buffer_nodes=63)
        assert hi == 6
        assert lo == 10 + 1 - 6

    def test_small_buffer_infeasible(self):
        lo, hi = valid_top_heights(tree_height=20, tree_buffer_nodes=7)
        assert lo > hi  # no feasible split: recursion would be needed

    def test_validation(self):
        with pytest.raises(ValueError):
            valid_top_heights(0, 10)
        with pytest.raises(ValueError):
            valid_top_heights(5, 0)


class TestHardwareConfig:
    def test_paper_defaults(self):
        hw = CrescentHardwareConfig()
        assert hw.num_pes == 4
        assert hw.tree_buffer.size_bytes == 6 * 1024
        assert hw.tree_buffer.num_banks == 4
        assert hw.point_buffer.num_banks == 16
        assert hw.tree_buffer_nodes == 6 * 1024 // NODE_BYTES

    def test_with_overrides(self):
        hw = CrescentHardwareConfig().with_overrides(num_pes=8)
        assert hw.num_pes == 8
        assert CrescentHardwareConfig().num_pes == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            CrescentHardwareConfig(num_pes=0)


class TestSplitTree:
    def test_zero_height_is_single_subtree(self):
        tree = tree_of(31)
        split = SplitTree(tree, 0)
        assert split.num_subtrees == 1
        assert split.subtree_roots.tolist() == [tree.root]
        assert split.top_nodes.size == 0

    def test_rejects_too_tall(self):
        tree = tree_of(7)  # height 3
        with pytest.raises(ValueError):
            SplitTree(tree, 3)

    def test_subtree_partition(self):
        tree = tree_of(63)  # perfect height-6 tree
        split = SplitTree(tree, 2)
        assert split.num_subtrees == 4
        covered = set(split.top_nodes.tolist())
        for root in split.subtree_roots:
            covered.update(split.subtree_nodes(int(root)).tolist())
        assert covered == set(range(63))

    def test_memory_image_contiguous_and_complete(self):
        tree = tree_of(63)
        split = SplitTree(tree, 2)
        assert split.total_bytes == 63 * NODE_BYTES
        addrs = sorted(split.dram_address_of(n) for n in range(63))
        assert addrs == [i * NODE_BYTES for i in range(63)]
        # Top tree is the prefix of the image.
        for node in split.top_nodes:
            assert split.dram_address_of(int(node)) < split.top_tree_bytes()

    def test_subtree_block_contiguous(self):
        tree = tree_of(63)
        split = SplitTree(tree, 3)
        for root in split.subtree_roots:
            nodes = split.subtree_nodes(int(root))
            addrs = [split.dram_address_of(int(n)) for n in nodes]
            assert addrs == list(range(addrs[0], addrs[0] + len(nodes) * NODE_BYTES, NODE_BYTES))

    def test_route_queries_lands_on_roots(self):
        tree = tree_of(127, seed=3)
        split = SplitTree(tree, 3)
        queries = np.random.default_rng(4).normal(size=(50, 3))
        roots = split.route_queries(queries)
        assert set(roots.tolist()) <= set(split.subtree_roots.tolist())

    def test_route_matches_descent_machine(self):
        from repro.kdtree import TopTreeDescent

        tree = tree_of(127, seed=5)
        split = SplitTree(tree, 3)
        queries = np.random.default_rng(6).normal(size=(20, 3))
        vec = split.route_queries(queries)
        for i, q in enumerate(queries):
            d = TopTreeDescent(tree, q, radius=0.5, top_height=3)
            while not d.done:
                d.advance()
            assert d.assigned_root == vec[i]

    def test_queue_occupancy_sums_to_queries(self):
        tree = tree_of(255, seed=7)
        split = SplitTree(tree, 4)
        queries = np.random.default_rng(8).normal(size=(64, 3))
        occ = split.queue_occupancy(queries)
        assert sum(occ.values()) == 64
        assert set(occ.keys()) == set(int(r) for r in split.subtree_roots)

    def test_max_subtree_shrinks_with_height(self):
        tree = tree_of(255, seed=9)
        sizes = [SplitTree(tree, h).max_subtree_nodes() for h in range(0, 5)]
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=8, max_value=200),
    h=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_split_partitions_nodes(n, h, seed):
    tree = tree_of(n, seed=seed)
    if h >= tree.height:
        return
    split = SplitTree(tree, h)
    covered = list(split.top_nodes.tolist())
    for root in split.subtree_roots:
        covered.extend(split.subtree_nodes(int(root)).tolist())
    assert sorted(covered) == list(range(n))
