"""Tests for the analysis drivers and table formatting."""

import numpy as np
import pytest

from repro.accel import evaluation_hardware, evaluation_networks, workload_points
from repro.analysis import (
    energy_saving_contributions,
    format_series,
    format_table,
    knob_performance_sweep,
    nodes_skipped_vs_elision_height,
    nodes_visited_vs_top_height,
    nonstreaming_fraction,
    run_evaluation_suite,
    search_conflict_rate_vs_banks,
)
from repro.core import ApproxSetting


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table("T", ["a", "bbbb"], [[1, 2.5], ["xx", 3]])
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bbbb" in lines[2]
        assert "2.500" in out

    def test_format_table_rejects_ragged(self):
        with pytest.raises(ValueError):
            format_table("T", ["a"], [[1, 2]])

    def test_format_series(self):
        out = format_series("S", [1, 2], [0.5, 0.25])
        assert "0.500" in out and "0.250" in out


class TestCharacterization:
    def test_nonstreaming_high_on_small_workload(self):
        frac = nonstreaming_fraction("PointNet++ (c)", num_parallel=4)
        assert frac > 0.9

    def test_conflict_rate_monotone(self):
        rates = search_conflict_rate_vs_banks(
            (2, 8), num_points=512, num_queries=64
        )
        assert rates[2] >= rates[8]


class TestTradeoff:
    def setup_method(self):
        rng = np.random.default_rng(0)
        self.points = rng.normal(size=(512, 3))
        self.queries = self.points[:64]

    def test_visits_normalized_and_monotone(self):
        result = nodes_visited_vs_top_height(
            self.points, self.queries, 0.4, 16, (0, 2, 4)
        )
        assert result[0] == 1.0
        assert result[0] >= result[2] >= result[4]

    def test_skips_normalized(self):
        result = nodes_skipped_vs_elision_height(
            self.points, self.queries, 0.4, 16, top_height=2,
            elision_heights=(3, 6),
        )
        assert max(result.values()) == 1.0
        assert result[3] >= result[6]


@pytest.fixture(scope="module")
def suite():
    return run_evaluation_suite()


class TestComparison:
    def test_suite_covers_table1(self, suite):
        assert set(suite) == set(evaluation_networks())

    def test_speedups_positive(self, suite):
        for r in suite.values():
            assert r.speedup_ans > 1.0
            assert r.speedup_bce > 1.0

    def test_energy_contributions_normalized(self, suite):
        for r in suite.values():
            c = energy_saving_contributions(r)
            assert abs(sum(c.values()) - 1.0) < 1e-6
            assert all(v >= 0 for v in c.values())

    def test_knob_sweep_keys(self):
        spec = evaluation_networks()["PointNet++ (c)"]
        pts = workload_points("PointNet++ (c)")
        settings = [ApproxSetting(2, None), ApproxSetting(4, 8)]
        sweep = knob_performance_sweep(
            spec, pts, settings, hw=evaluation_hardware()
        )
        assert set(sweep) == {(2, None), (4, 8)}
        for speedup, energy in sweep.values():
            assert speedup > 0 and energy > 0
