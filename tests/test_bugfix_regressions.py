"""Regression tests for the cycle-accounting bugfix sweep.

One test class per fixed bug:

* ``LruCache.get`` treated a cached ``None``/falsy value as a miss, so
  ``memoize`` silently recomputed (and double-counted misses) forever.
* The vectorized top-tree descent re-tested a parked query (one whose
  branch ran out of children early) against the same leaf every remaining
  level, inflating ``nodes_visited``/``top_tree_visits`` and the
  distance-energy term derived from them.
* A same-address broadcast loser was advanced through the elision pathway
  (``elide=True`` with ``substitute == node``), mislabeling a *served*
  fetch with elision semantics; broadcasts are now recorded as served
  (``SramStats.broadcasts``) and the backdoor is an error.
* ``NeighborSearchEngine._top_phase`` accounted stalls as
  ``level_cycles - 1`` (serialization depth, not waiting PEs) and banked
  *global node ids* while phase 2 banks sub-tree buffer slots.
* ``dram_traffic_study`` crashed on an empty trace list
  (``np.concatenate([])`` / ``max()`` of an empty stream) where
  ``nonstreaming_fraction`` guarded the same case.
* Every trainer's ``evaluate`` unconditionally called ``model.train()``
  on exit, silently flipping an eval-mode model back to training.
"""

import numpy as np
import pytest

from repro.core import ApproxSetting, TreeBufferBanking
from repro.core.approx_search import approximate_ball_query, run_subtree_lockstep
from repro.core.config import CrescentHardwareConfig
from repro.core.split_tree import SplitTree
from repro.accel.pe import PIPELINE_DEPTH
from repro.accel.search_engine import NeighborSearchEngine
from repro.kdtree import SubtreeSearch, build_kdtree
from repro.kdtree.build import KdTree
from repro.memsim import SramStats
from repro.memsim.sram import BankedSramConfig
from repro.runtime import LruCache, SearchSession


# ----------------------------------------------------------------------
# Bugfix 1: LruCache sentinel miss marker
# ----------------------------------------------------------------------
class TestLruCacheSentinel:
    def test_cached_none_is_a_hit(self):
        cache = LruCache()
        cache.put("k", None)
        assert cache.get("k") is None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 0

    def test_cached_falsy_values_are_hits(self):
        cache = LruCache()
        for key, value in (("zero", 0), ("empty", ()), ("false", False)):
            cache.put(key, value)
            assert cache.get(key) == value
        assert cache.stats.misses == 0
        assert cache.stats.hits == 3

    def test_get_default_on_miss(self):
        cache = LruCache()
        marker = object()
        assert cache.get("missing", marker) is marker
        assert cache.stats.misses == 1

    def test_memoize_caches_none_result(self, rng):
        session = SearchSession()
        pts = rng.normal(size=(10, 3))
        calls = []

        def compute():
            calls.append(1)
            return None  # legal result; must be computed exactly once

        assert session.memoize("k", (pts,), compute) is None
        assert session.memoize("k", (pts,), compute) is None
        assert len(calls) == 1
        assert session.results.stats.misses == 1
        assert session.results.stats.hits == 1


# ----------------------------------------------------------------------
# Bugfix 2: parked queries in the top-tree descent
# ----------------------------------------------------------------------
def short_branch_tree() -> KdTree:
    """Hand-built tree with a depth-1 leaf next to a depth-3 spine.

    (Balanced median-split trees keep all leaves within the bottom two
    levels, so the parked-query path needs a custom tree.)

    ::

              0 (x=0)
             / \\
      leaf  1   2 (x=1)
        (x=-1)   \\
                  3 (x=2)
                   \\
                    4 (x=3)
    """
    points = np.array(
        [[0.0, 0, 0], [-1.0, 0, 0], [1.0, 0, 0], [2.0, 0, 0], [3.0, 0, 0]]
    )
    return KdTree(
        points=points,
        point_id=np.arange(5, dtype=np.int64),
        split_dim=np.zeros(5, dtype=np.int8),
        left=np.array([1, -1, -1, -1, -1], dtype=np.int64),
        right=np.array([2, -1, 3, 4, -1], dtype=np.int64),
        depth=np.array([0, 1, 1, 2, 3], dtype=np.int32),
        subtree_size=np.array([5, 1, 3, 2, 1], dtype=np.int64),
    )


class TestParkedTopTreeDescent:
    def test_parked_query_tested_once(self):
        tree = short_branch_tree()
        queries = np.array([[-1.0, 0, 0], [3.0, 0, 0]])
        idx, counts, report = approximate_ball_query(
            tree, queries, 0.5, 4, ApproxSetting(3, None),
            simulate_conflicts=False,
        )
        # Query 0 parks at leaf 1 after two fetches (root, leaf); query 1
        # descends all three levels.  The old accounting charged
        # m * top_height = 6 fetches and re-tested the leaf each level.
        assert report.top_tree_visits == 5
        # Phase 2 then revisits each assigned root once (leaf 1, node 4).
        assert report.traversal.nodes_visited == 7
        np.testing.assert_array_equal(counts, [1, 1])
        np.testing.assert_array_equal(idx[0], [1, 1, 1, 1])
        np.testing.assert_array_equal(idx[1], [4, 4, 4, 4])

    def test_parked_hit_not_duplicated(self):
        # The re-test used to append the leaf's point to the query's hit
        # list once per remaining level; dedup hid it from results but the
        # duplicates crowded out the "remaining capacity" budget.
        tree = short_branch_tree()
        queries = np.array([[-1.0, 0, 0]])
        idx, counts, report = approximate_ball_query(
            tree, queries, 2.5, 4, ApproxSetting(3, None),
            simulate_conflicts=False,
        )
        # Radius 2.5 reaches points 0 and 1 from the parked query.
        assert counts[0] == 2
        assert set(idx[0].tolist()) == {1, 0}

    def test_balanced_trees_unaffected(self, rng):
        # Median-split trees have no early leaves above the last two
        # levels: the full m * h_t accounting must be unchanged.
        points = rng.normal(size=(256, 3))
        tree = build_kdtree(points)
        queries = points[:32]
        _, _, report = approximate_ball_query(
            tree, queries, 0.4, 8, ApproxSetting(4, None),
            simulate_conflicts=False,
        )
        assert report.top_tree_visits == 32 * 4


# ----------------------------------------------------------------------
# Bugfix 3: broadcasts recorded as served, not elided
# ----------------------------------------------------------------------
class TestBroadcastServed:
    def _identical_machines(self, rng, count=3):
        points = rng.normal(size=(127, 3))
        tree = build_kdtree(points)
        query = points[0]
        return tree, [
            SubtreeSearch(tree, query, 0.6, root=tree.root, max_neighbors=8,
                          elide_depth=0)
            for _ in range(count)
        ]

    def test_same_address_losers_visit_normally(self, rng):
        tree, machines = self._identical_machines(rng)
        solo = SubtreeSearch(tree, machines[0].query, 0.6, root=tree.root,
                             max_neighbors=8, elide_depth=0)
        solo.run_to_completion()
        sram = SramStats()
        slot_map = {int(n): i for i, n in enumerate(tree.subtree_nodes(tree.root))}
        run_subtree_lockstep(machines, slot_map, TreeBufferBanking(4), 4, sram)
        # Identical machines fetch the same address every cycle: every
        # conflict is a broadcast, nothing is elided or lost.
        assert sram.conflicted > 0
        assert sram.broadcasts == sram.conflicted
        assert sram.elided == 0
        for machine in machines:
            assert machine.hits == solo.hits
            assert machine.stats.nodes_skipped == 0

    def test_broadcast_reads_one_bank_fetch(self, rng):
        tree, machines = self._identical_machines(rng, count=2)
        sram = SramStats()
        slot_map = {int(n): i for i, n in enumerate(tree.subtree_nodes(tree.root))}
        run_subtree_lockstep(machines, slot_map, TreeBufferBanking(4), 2, sram)
        # One energy-bearing read per cycle serves both PEs.
        assert sram.reads_served == sram.cycles
        assert sram.accesses == 2 * sram.cycles

    def test_vector_engine_counts_broadcasts_identically(self, rng):
        points = rng.normal(size=(300, 3))
        tree = build_kdtree(points)
        queries = np.repeat(points[:4], 3, axis=0)  # triples share addresses
        kwargs = dict(banking=TreeBufferBanking(4), num_pes=4,
                      simulate_conflicts=True)
        _, _, ref = approximate_ball_query(
            tree, queries, 0.5, 8, ApproxSetting(2, 3), engine="reference",
            **kwargs,
        )
        _, _, vec = approximate_ball_query(
            tree, queries, 0.5, 8, ApproxSetting(2, 3), engine="vector",
            **kwargs,
        )
        assert ref.tree_sram.broadcasts > 0
        assert vec.tree_sram.broadcasts == ref.tree_sram.broadcasts


# ----------------------------------------------------------------------
# Bugfix 4: top-phase stall accounting and banking
# ----------------------------------------------------------------------
def engine_with(banks: int, pes: int = 4) -> NeighborSearchEngine:
    hw = CrescentHardwareConfig().with_overrides(
        num_pes=pes,
        tree_buffer=BankedSramConfig(size_bytes=6 * 1024, num_banks=banks),
    )
    return NeighborSearchEngine(hw)


class TestTopPhaseAccounting:
    def test_one_stall_per_losing_pe(self):
        # Seven collinear points; the median-split root is x=3 with the
        # depth-1 children covering x<3 and x>3.  Four queries split 2/2
        # across the children; with one bank the two distinct level-1
        # fetches serialize and the two PEs behind the losing node stall.
        points = np.array([[float(i), 0, 0] for i in range(7)])
        tree = build_kdtree(points)
        queries = np.array([[-10.0, 0, 0], [-10.0, 0, 0],
                            [10.0, 0, 0], [10.0, 0, 0]])
        engine = engine_with(banks=1)
        split = SplitTree(tree, 2)
        cycles, stalls = engine._top_phase(split, queries)
        # Level 0: one broadcast fetch, no stalls.  Level 1: two nodes in
        # one bank -> 2 cycles, and *two* PEs wait behind the losing node
        # (the old accounting charged level_cycles - 1 = 1).
        assert cycles == 1 + 2 + (PIPELINE_DEPTH - 1)
        assert stalls == 2

    def test_broadcast_fetches_do_not_stall(self):
        points = np.array([[float(i), 0, 0] for i in range(7)])
        tree = build_kdtree(points)
        queries = np.tile(np.array([[-10.0, 0, 0]]), (4, 1))  # same path
        engine = engine_with(banks=1)
        cycles, stalls = engine._top_phase(SplitTree(tree, 2), queries)
        assert stalls == 0
        assert cycles == 1 + 1 + (PIPELINE_DEPTH - 1)

    def test_banks_by_buffer_slot_not_node_id(self):
        # Custom tree whose depth-1 nodes are ids 3 and 5: as buffer slots
        # they are positions 1 and 2 of the streamed top tree (no conflict
        # with 2 banks); banking the raw ids 3 and 5 would alias both to
        # bank 1 and serialize the level.
        points = np.array(
            [[0.0, 0, 0], [-3.0, 0, 0], [-1.0, 0, 0], [-2.0, 0, 0],
             [1.0, 0, 0], [2.0, 0, 0], [3.0, 0, 0]]
        )
        tree = KdTree(
            points=points,
            point_id=np.arange(7, dtype=np.int64),
            split_dim=np.zeros(7, dtype=np.int8),
            left=np.array([3, -1, -1, 1, -1, 4, -1], dtype=np.int64),
            right=np.array([5, -1, -1, 2, -1, 6, -1], dtype=np.int64),
            depth=np.array([0, 2, 2, 1, 2, 1, 2], dtype=np.int32),
            subtree_size=np.array([7, 1, 1, 3, 1, 3, 1], dtype=np.int64),
        )
        split = SplitTree(tree, 2)
        np.testing.assert_array_equal(split.top_nodes, [0, 3, 5])
        queries = np.array([[-2.0, 0, 0], [2.0, 0, 0]])
        engine = engine_with(banks=2)
        cycles, stalls = engine._top_phase(split, queries)
        assert cycles == 1 + 1 + (PIPELINE_DEPTH - 1)
        assert stalls == 0

    def test_parked_queries_stop_fetching(self):
        # Consistency with the phase-1 fix: a query parked at an early
        # leaf issues no further top-phase fetches, so its PE neither
        # burns cycles nor stalls others for the remaining levels.
        tree = short_branch_tree()
        queries = np.array([[-1.0, 0, 0], [3.0, 0, 0]])
        engine = engine_with(banks=1, pes=2)
        cycles, stalls = engine._top_phase(SplitTree(tree, 3), queries)
        # Level 0: both at the root (broadcast, 1 cycle).  Level 1: nodes
        # 1 and 2 in one bank (2 cycles, 1 losing PE).  Level 2: query 0
        # is parked at leaf 1 — only query 1 fetches node 3 (1 cycle, no
        # stall; the old accounting re-fetched the leaf and serialized).
        assert cycles == 1 + 2 + 1 + (PIPELINE_DEPTH - 1)
        assert stalls == 1

    def test_run_surfaces_top_phase_stalls(self, rng):
        points = rng.normal(size=(512, 3))
        tree = build_kdtree(points)
        queries = points[rng.choice(512, 64, replace=False)]
        engine = engine_with(banks=2, pes=8)
        _, _, result = engine.run(tree, queries, 0.4, 8, ApproxSetting(4, None))
        split = SplitTree(tree, ApproxSetting(4, None).scaled_to(tree.height).top_height)
        assert result.top_phase_stalls == engine._top_phase(split, queries)[1]
        assert result.top_phase_stalls > 0


# ----------------------------------------------------------------------
# Bugfix 5: dram_traffic_study on an empty trace list
# ----------------------------------------------------------------------
class TestDramTrafficEmptyTraces:
    def test_no_traces_reports_zero_instead_of_crashing(self, monkeypatch):
        from repro.analysis import characterization, dram_traffic_study
        from repro.analysis.characterization import nonstreaming_fraction

        monkeypatch.setattr(
            characterization, "layer_search_traces", lambda *a, **k: []
        )
        result = dram_traffic_study("PointNet++ (c)")
        assert result.traffic_ratio == 0.0 and result.miss_rate == 0.0
        # nonstreaming_fraction already guarded this; keep them agreeing.
        assert nonstreaming_fraction("PointNet++ (c)") == 0.0


# ----------------------------------------------------------------------
# Bugfix 6: evaluate() silently flipping eval-mode models to training
# ----------------------------------------------------------------------
class TestEvaluateRestoresMode:
    def test_eval_mode_model_stays_in_eval_mode(self):
        from repro.core import ApproxSetting
        from repro.geometry import ShapeClassificationDataset
        from repro.models import PointNetPPClassifier
        from repro.training import ClassificationTrainer, FixedSetting

        data = ShapeClassificationDataset(
            size=4, num_points=64, seed=0, occlusion=0.0, noise=0.01, rotate=False
        )
        model = PointNetPPClassifier(data.num_classes, np.random.default_rng(0))
        trainer = ClassificationTrainer(model, FixedSetting(ApproxSetting()))

        model.eval()
        trainer.evaluate(data, ApproxSetting())
        assert all(not m.training for m in model.modules())

        model.train()
        trainer.evaluate(data, ApproxSetting())
        assert all(m.training for m in model.modules())
