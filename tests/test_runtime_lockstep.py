"""Equivalence suite: VectorizedLockstep vs the per-step reference engine.

The vectorized engine claims to be *cycle-, stall-, stat-, and
hit-identical* to :func:`repro.core.approx_search.run_subtree_lockstep`
driving one :class:`~repro.kdtree.SubtreeSearch` machine per query.  These
tests pin that claim on randomized clouds, settings, and hardware shapes —
both through the public ``approximate_ball_query`` routing (full
:class:`SearchReport` comparison) and at the raw engine level (including
the ``descend`` elision policy the public API does not expose).
"""

import numpy as np
import pytest

from repro.core import ApproxSetting, TreeBufferBanking
from repro.core.approx_search import approximate_ball_query
from repro.core.split_tree import SplitTree
from repro.kdtree import SubtreeSearch, build_kdtree
from repro.kdtree.stats import TraversalStats
from repro.memsim import SramStats
from repro.runtime import VectorizedLockstep


def report_fingerprint(report):
    """Every observable the two engines must agree on."""
    t, s = report.traversal, report.tree_sram
    return {
        "lockstep_cycles": report.lockstep_cycles,
        "stall_cycles": report.stall_cycles,
        "subtrees_loaded": report.subtrees_loaded,
        "top_tree_visits": report.top_tree_visits,
        "queue_occupancy": dict(report.queue_occupancy),
        "nodes_visited": t.nodes_visited,
        "nodes_skipped": t.nodes_skipped,
        "nodes_pruned": t.nodes_pruned,
        "stack_pushes": t.stack_pushes,
        "stack_pops": t.stack_pops,
        "neighbors_found": t.neighbors_found,
        "queries": t.queries,
        "sram_accesses": s.accesses,
        "sram_conflicted": s.conflicted,
        "sram_elided": s.elided,
        "sram_broadcasts": s.broadcasts,
        "sram_reads_served": s.reads_served,
        "sram_cycles": s.cycles,
    }


def run_both(tree, queries, radius, k, setting, banks, pes, simulate):
    kwargs = dict(
        banking=TreeBufferBanking(banks),
        num_pes=pes,
        simulate_conflicts=simulate,
    )
    ref = approximate_ball_query(
        tree, queries, radius, k, setting, engine="reference", **kwargs
    )
    vec = approximate_ball_query(
        tree, queries, radius, k, setting, engine="vector", **kwargs
    )
    return ref, vec


class TestRandomizedEquivalence:
    """Full-report identity over a randomized grid of workloads."""

    def test_randomized_clouds_and_settings(self, rng):
        for trial in range(25):
            n = int(rng.integers(30, 600))
            m = int(rng.integers(1, 90))
            points = rng.normal(size=(n, 3))
            queries = rng.normal(size=(m, 3)) * 0.8
            tree = build_kdtree(points)
            ht = int(rng.integers(0, 7))
            he = None if rng.integers(0, 2) else int(rng.integers(0, 9))
            pes = int(rng.choice([1, 2, 3, 4, 8, 16]))
            banks = int(rng.choice([1, 2, 4, 8]))
            simulate = bool(rng.integers(0, 2))
            radius = float(rng.uniform(0.15, 1.1))
            k = int(rng.integers(1, 24))
            ctx = f"trial={trial} n={n} m={m} ht={ht} he={he} pes={pes} banks={banks}"
            (ri, rc, rr), (vi, vc, vr) = run_both(
                tree, queries, radius, k, ApproxSetting(ht, he),
                banks, pes, simulate,
            )
            assert np.array_equal(ri, vi), ctx
            assert np.array_equal(rc, vc), ctx
            assert report_fingerprint(rr) == report_fingerprint(vr), ctx

    def test_top_hits_fill_buffers(self, rng):
        # max_neighbors=1 with a huge radius: most machines are done at
        # creation (top-tree hits fill the result buffer), exercising the
        # reference's discard-on-refill quirk.
        points = rng.normal(size=(200, 3))
        tree = build_kdtree(points)
        queries = points[rng.choice(200, 40)]
        (ri, rc, rr), (vi, vc, vr) = run_both(
            tree, queries, 2.5, 1, ApproxSetting(4, 2), banks=2, pes=4,
            simulate=True,
        )
        assert np.array_equal(ri, vi)
        assert np.array_equal(rc, vc)
        assert report_fingerprint(rr) == report_fingerprint(vr)

    def test_single_pe_and_single_bank_extremes(self, rng):
        points = rng.normal(size=(300, 3))
        tree = build_kdtree(points)
        queries = points[rng.choice(300, 48, replace=False)]
        for pes, banks in ((1, 8), (8, 1)):
            (ri, rc, rr), (vi, vc, vr) = run_both(
                tree, queries, 0.5, 8, ApproxSetting(3, 4), banks, pes, True
            )
            assert np.array_equal(ri, vi)
            assert report_fingerprint(rr) == report_fingerprint(vr)


class TestEngineLevelEquivalence:
    """Drive both engines directly on the same machine queues."""

    @pytest.fixture
    def problem_builder(self, rng, lockstep_groups_builder):
        def build(n=500, m=48, ht=2):
            points = rng.normal(size=(n, 3))
            tree = build_kdtree(points)
            queries = points[rng.choice(n, m, replace=False)]
            groups, split = lockstep_groups_builder(tree, queries, ht)
            return tree, queries, split, groups

        return build

    @pytest.mark.parametrize("policy", ["skip", "descend"])
    def test_policies_match_reference(
        self, problem_builder, reference_lockstep_driver, policy
    ):
        tree, queries, split, groups = problem_builder()
        banking = TreeBufferBanking(2)
        radius, k, he, pes = 0.6, 16, 2, 8
        cycles, stalls, hits, stats, sram = reference_lockstep_driver(
            tree, queries, split, groups, radius, k, he, pes, banking,
            elide_policy=policy,
        )
        engine = VectorizedLockstep(
            tree, banking=banking, num_pes=pes, elide_policy=policy
        )
        vstats, vsram = TraversalStats(), SramStats()
        mach_queries = np.concatenate([q for _, q in groups])
        outcome = engine.run(
            queries, radius, groups, np.full(len(mach_queries), k),
            elide_depth=he, traversal=vstats, sram=vsram,
        )
        assert outcome.cycles == cycles
        assert outcome.stalls == stalls
        assert {int(q): h for q, h in zip(mach_queries, outcome.hits)} == hits
        for field in ("nodes_visited", "nodes_skipped", "nodes_pruned",
                      "stack_pushes", "stack_pops", "neighbors_found"):
            assert getattr(vstats, field) == getattr(stats, field), field
        for field in ("accesses", "conflicted", "elided", "broadcasts",
                      "reads_served", "cycles"):
            assert getattr(vsram, field) == getattr(sram, field), field

    def test_group_cycles_sum_to_total(self, problem_builder):
        tree, queries, split, groups = problem_builder(ht=3)
        engine = VectorizedLockstep(tree, banking=TreeBufferBanking(4), num_pes=4)
        mach_queries = np.concatenate([q for _, q in groups])
        outcome = engine.run(
            queries, 0.5, groups, np.full(len(mach_queries), 8), elide_depth=3
        )
        assert len(outcome.group_cycles) == len(groups)
        assert int(outcome.group_cycles.sum()) == outcome.cycles

    def test_run_free_matches_run_to_completion(self, problem_builder):
        tree, queries, split, groups = problem_builder(ht=2)
        stats = TraversalStats()
        expected = {}
        for root, q_ids in groups:
            for qi in q_ids:
                machine = SubtreeSearch(
                    tree, queries[qi], 0.5, root=root, max_neighbors=8,
                    stats=stats,
                )
                machine.run_to_completion()
                expected[int(qi)] = list(machine.hits)
        engine = VectorizedLockstep(tree)
        vstats = TraversalStats()
        mach_queries = np.concatenate([q for _, q in groups])
        roots = np.concatenate(
            [np.full(len(q), root, dtype=np.int64) for root, q in groups]
        )
        hits = engine.run_free(
            queries[mach_queries], 0.5, roots,
            np.full(len(mach_queries), 8), traversal=vstats,
        )
        assert {int(q): h for q, h in zip(mach_queries, hits)} == expected
        for field in ("nodes_visited", "nodes_pruned", "stack_pushes",
                      "stack_pops", "neighbors_found"):
            assert getattr(vstats, field) == getattr(stats, field), field

    def test_preorder_slots_match_split_tree_enumeration(self, rng):
        # The vectorized engine derives bank slots from Euler tin indices;
        # they must equal the reference's SplitTree.subtree_nodes order.
        tree = build_kdtree(rng.normal(size=(257, 3)))
        tree._ensure_euler()
        split = SplitTree(tree, 3)
        for root in split.subtree_roots:
            nodes = split.subtree_nodes(int(root))
            slots = tree.tin[nodes] - tree.tin[int(root)]
            assert np.array_equal(slots, np.arange(len(nodes)))

    def test_rejects_bad_arguments(self, rng):
        tree = build_kdtree(rng.normal(size=(31, 3)))
        with pytest.raises(ValueError):
            VectorizedLockstep(tree, num_pes=0)
        with pytest.raises(ValueError):
            VectorizedLockstep(tree, elide_policy="bogus")
        engine = VectorizedLockstep(tree)  # no banking
        with pytest.raises(ValueError):
            engine.run(np.zeros((1, 3)), 0.5, [(0, np.array([0]))], np.array([4]))

    def test_record_trace_routes_to_reference(self, rng):
        # The vectorized engine records no visit trace; record_trace must
        # transparently use the reference machines.
        points = rng.normal(size=(120, 3))
        tree = build_kdtree(points)
        queries = points[:10]
        _, _, report = approximate_ball_query(
            tree, queries, 0.5, 8, ApproxSetting(2, None),
            simulate_conflicts=False, record_trace=True, engine="vector",
        )
        assert len(report.traversal.visit_trace) > 0
