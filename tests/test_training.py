"""Tests for metrics, samplers, and the approximation-aware trainers.

The integration tests pin the paper's central training claims at toy
scale: training reduces loss, approximate inference without retraining
loses accuracy, and approximation-aware retraining recovers it.
"""

import numpy as np
import pytest

from repro.core import ApproxSetting
from repro.geometry import (
    Box3D,
    LidarDetectionDataset,
    PartSegmentationDataset,
    ShapeClassificationDataset,
    num_part_classes,
)
from repro.models import (
    FrustumPointNet,
    PointNetPPClassifier,
    PointNetPPSegmenter,
)
from repro.training import (
    ClassificationTrainer,
    DetectionTrainer,
    FixedSetting,
    MixedSetting,
    SegmentationTrainer,
    detection_iou_geomean,
    mean_iou,
    overall_accuracy,
)


class TestMetrics:
    def test_overall_accuracy(self):
        assert overall_accuracy(np.array([1, 2, 3]), np.array([1, 0, 3])) == pytest.approx(2 / 3)

    def test_accuracy_validation(self):
        with pytest.raises(ValueError):
            overall_accuracy(np.array([1]), np.array([1, 2]))
        with pytest.raises(ValueError):
            overall_accuracy(np.array([]), np.array([]))

    def test_mean_iou_perfect(self):
        labels = np.array([0, 0, 1, 1, 2])
        assert mean_iou(labels, labels, 3) == pytest.approx(1.0)

    def test_mean_iou_skips_absent_classes(self):
        preds = np.array([0, 0, 1, 1])
        labels = np.array([0, 0, 1, 1])
        assert mean_iou(preds, labels, 10) == pytest.approx(1.0)

    def test_mean_iou_partial(self):
        preds = np.array([0, 0, 1, 1])
        labels = np.array([0, 1, 1, 1])
        # class0: inter 1, union 2 -> .5 ; class1: inter 2, union 3 -> 2/3
        assert mean_iou(preds, labels, 2) == pytest.approx((0.5 + 2 / 3) / 2)

    def test_detection_geomean(self):
        box = Box3D([0, 0, 0], [4, 2, 1.5], 0.0)
        assert detection_iou_geomean([box], [box]) == pytest.approx(1.0, abs=1e-6)

    def test_detection_floors_misses(self):
        a = Box3D([0, 0, 0], [2, 2, 2], 0.0)
        b = Box3D([50, 50, 0], [2, 2, 2], 0.0)
        assert detection_iou_geomean([a], [b]) == pytest.approx(1e-3)


class TestSamplers:
    def test_fixed(self):
        sampler = FixedSetting(ApproxSetting(3, 5))
        rng = np.random.default_rng(0)
        assert all(sampler.sample(rng) == ApproxSetting(3, 5) for _ in range(5))

    def test_mixed_covers_range(self):
        sampler = MixedSetting(top_heights=[1, 2, 3], elision_heights=[4, None])
        rng = np.random.default_rng(0)
        drawn = [sampler.sample(rng) for _ in range(200)]
        assert {s.top_height for s in drawn} == {1, 2, 3}
        assert {s.elision_height for s in drawn} == {4, None}

    def test_mixed_validation(self):
        with pytest.raises(ValueError):
            MixedSetting(top_heights=[])


@pytest.fixture(scope="module")
def tiny_cls_data():
    train = ShapeClassificationDataset(
        size=48, num_points=128, seed=0, occlusion=0.0, noise=0.01, rotate=False
    )
    test = ShapeClassificationDataset(
        size=24, num_points=128, seed=90_000, occlusion=0.0, noise=0.01, rotate=False
    )
    return train, test


class TestClassificationTrainer:
    def test_loss_decreases(self, tiny_cls_data):
        train, _ = tiny_cls_data
        model = PointNetPPClassifier(train.num_classes, np.random.default_rng(0))
        trainer = ClassificationTrainer(model, FixedSetting(ApproxSetting()), lr=2e-3)
        report = trainer.train(train, epochs=4)
        assert report.epoch_losses[-1] < report.epoch_losses[0]

    def test_learns_above_chance(self, tiny_cls_data):
        train, test = tiny_cls_data
        model = PointNetPPClassifier(train.num_classes, np.random.default_rng(1))
        trainer = ClassificationTrainer(model, FixedSetting(ApproxSetting()), lr=2e-3)
        trainer.train(train, epochs=8)
        acc = trainer.evaluate(test, ApproxSetting())
        assert acc > 2.5 / train.num_classes  # well above the 12.5% chance

    def test_approximation_without_retraining_hurts(self, tiny_cls_data):
        train, test = tiny_cls_data
        model = PointNetPPClassifier(train.num_classes, np.random.default_rng(1))
        trainer = ClassificationTrainer(model, FixedSetting(ApproxSetting()), lr=2e-3)
        trainer.train(train, epochs=8)
        exact = trainer.evaluate(test, ApproxSetting(0, None))
        harsh = trainer.evaluate(test, ApproxSetting(5, 2))
        assert harsh < exact

    def test_mixed_training_runs(self, tiny_cls_data):
        train, _ = tiny_cls_data
        model = PointNetPPClassifier(train.num_classes, np.random.default_rng(2))
        sampler = MixedSetting(top_heights=[1, 2, 3], elision_heights=[3, None])
        trainer = ClassificationTrainer(model, sampler, lr=2e-3)
        report = trainer.train(train, epochs=2)
        assert len(report.epoch_losses) == 2


class TestSegmentationTrainer:
    def test_trains_and_evaluates(self):
        train = PartSegmentationDataset(size=12, num_points=96, seed=0)
        test = PartSegmentationDataset(size=6, num_points=96, seed=7_000)
        model = PointNetPPSegmenter(num_part_classes(), np.random.default_rng(0))
        trainer = SegmentationTrainer(
            model, num_classes=num_part_classes(), lr=3e-3
        )
        report = trainer.train(train, epochs=3)
        assert report.epoch_losses[-1] < report.epoch_losses[0]
        miou = trainer.evaluate(test, ApproxSetting())
        assert 0.0 < miou <= 1.0


class TestDetectionTrainer:
    def test_trains_and_evaluates(self):
        train = LidarDetectionDataset(size=10, num_points=1024, seed=0, num_cars=2)
        test = LidarDetectionDataset(size=5, num_points=1024, seed=5_000, num_cars=2)
        model = FrustumPointNet(np.random.default_rng(0))
        trainer = DetectionTrainer(model, frustum_points=128, lr=3e-3)
        report = trainer.train(train, epochs=3)
        assert report.epoch_losses[-1] < report.epoch_losses[0]
        iou = trainer.evaluate(test, ApproxSetting())
        assert 0.0 < iou <= 1.0
