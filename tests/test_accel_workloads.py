"""Tests for the evaluation workload specs and scaled hardware config."""

import numpy as np
import pytest

from repro.accel import (
    QUERY_BYTES,
    evaluation_hardware,
    evaluation_networks,
    workload_points,
)
from repro.core import CrescentHardwareConfig


class TestWorkloadSpecs:
    def test_layer_chains_are_feasible(self):
        # Each layer samples its queries from the previous layer's output,
        # so query counts must be non-increasing along the chain and fit
        # the input cloud.
        for name, spec in evaluation_networks().items():
            n_points = len(workload_points(name))
            previous = n_points
            for layer in spec.layers:
                assert layer.num_queries <= previous, (name, layer.name)
                previous = layer.num_queries

    def test_points_are_finite_and_3d(self):
        for name in evaluation_networks():
            pts = workload_points(name)
            assert pts.ndim == 2 and pts.shape[1] == 3
            assert np.isfinite(pts).all()

    def test_points_deterministic_per_seed(self):
        a = workload_points("DensePoint", seed=1)
        b = workload_points("DensePoint", seed=1)
        c = workload_points("DensePoint", seed=2)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_fpointnet_uses_scene_scale(self):
        scene = workload_points("F-PointNet")
        shape = workload_points("PointNet++ (c)")
        # LiDAR scenes span tens of meters; shapes live in the unit ball.
        assert np.abs(scene).max() > 10 * np.abs(shape).max()


class TestEvaluationHardware:
    def test_only_query_buffer_differs_from_paper(self):
        hw = evaluation_hardware()
        paper = CrescentHardwareConfig()
        assert hw.num_pes == paper.num_pes
        assert hw.tree_buffer == paper.tree_buffer
        assert hw.point_buffer == paper.point_buffer
        assert hw.query_buffer.size_bytes < paper.query_buffer.size_bytes

    def test_query_buffer_capacity_in_reload_regime(self):
        hw = evaluation_hardware()
        capacity = hw.query_buffer.size_bytes // QUERY_BYTES
        # Sub-tree queues at our workload scale are ~16-64 queries; the
        # buffer must be small enough that reloads actually happen.
        assert 4 <= capacity <= 16
