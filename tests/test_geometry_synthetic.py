"""Unit tests for the synthetic shape / part / scene generators."""

import numpy as np
import pytest

from repro.geometry import (
    PART_CATEGORIES,
    Box3D,
    box_iou_bev,
    generate_scene,
    num_part_classes,
    sample_part_object,
    sample_shape,
    shape_class_names,
)
from repro.geometry.synthetic import random_rotation


class TestShapes:
    @pytest.mark.parametrize("name", shape_class_names())
    def test_every_class_generates(self, name):
        rng = np.random.default_rng(0)
        cloud = sample_shape(name, rng, num_points=128)
        assert len(cloud) == 128
        assert cloud.attrs["class_name"] == name
        assert np.isfinite(cloud.points).all()

    def test_unknown_class_raises(self):
        with pytest.raises(KeyError):
            sample_shape("dodecahedron", np.random.default_rng(0))

    def test_deterministic_given_seed(self):
        a = sample_shape("sphere", np.random.default_rng(42), num_points=64)
        b = sample_shape("sphere", np.random.default_rng(42), num_points=64)
        assert np.array_equal(a.points, b.points)

    def test_different_seeds_differ(self):
        a = sample_shape("sphere", np.random.default_rng(1), num_points=64)
        b = sample_shape("sphere", np.random.default_rng(2), num_points=64)
        assert not np.array_equal(a.points, b.points)

    def test_normalized_output(self):
        cloud = sample_shape("torus", np.random.default_rng(3), num_points=64)
        assert np.linalg.norm(cloud.points, axis=1).max() <= 1.0 + 1e-9

    def test_occlusion_changes_cloud(self):
        a = sample_shape("cube", np.random.default_rng(5), occlusion=0.0, rotate=False)
        b = sample_shape("cube", np.random.default_rng(5), occlusion=0.4, rotate=False)
        assert not np.array_equal(a.points, b.points)

    def test_class_ids_are_list_indices(self):
        names = shape_class_names()
        for i, name in enumerate(names):
            cloud = sample_shape(name, np.random.default_rng(0), num_points=16)
            assert cloud.attrs["class_id"] == i


class TestRandomRotation:
    def test_is_orthonormal(self):
        for seed in range(5):
            rot = random_rotation(np.random.default_rng(seed))
            assert np.allclose(rot @ rot.T, np.eye(3), atol=1e-9)
            assert np.isclose(np.linalg.det(rot), 1.0)


class TestPartObjects:
    @pytest.mark.parametrize("category", list(PART_CATEGORIES.keys()))
    def test_every_category_generates(self, category):
        rng = np.random.default_rng(0)
        cloud = sample_part_object(category, rng, num_points=120)
        assert len(cloud) == 120
        assert cloud.labels is not None
        assert len(np.unique(cloud.labels)) == len(PART_CATEGORIES[category])

    def test_part_ids_globally_unique(self):
        seen = {}
        for category in PART_CATEGORIES:
            cloud = sample_part_object(category, np.random.default_rng(0))
            for lab in np.unique(cloud.labels):
                assert lab not in seen or seen[lab] == category
                seen[int(lab)] = category
        assert len(seen) == num_part_classes()

    def test_unknown_category_raises(self):
        with pytest.raises(KeyError):
            sample_part_object("chair", np.random.default_rng(0))


class TestScenes:
    def test_scene_point_budget(self):
        scene = generate_scene(np.random.default_rng(0), num_points=2048, num_cars=3)
        assert len(scene.cloud) == 2048
        assert len(scene.boxes) == 3

    def test_car_points_labelled(self):
        scene = generate_scene(np.random.default_rng(1), num_points=4096, num_cars=4)
        # Car surface sampling guarantees some points inside boxes.
        assert scene.cloud.labels.sum() > 0

    def test_zero_cars(self):
        scene = generate_scene(np.random.default_rng(2), num_points=512, num_cars=0)
        assert scene.boxes == []
        assert scene.cloud.labels.sum() == 0

    def test_negative_cars_raises(self):
        with pytest.raises(ValueError):
            generate_scene(np.random.default_rng(0), num_cars=-1)


class TestBoxIoU:
    def test_identical_boxes(self):
        box = Box3D([0, 0, 0], [4, 2, 1.5], 0.3)
        assert box_iou_bev(box, box) == pytest.approx(1.0, abs=1e-6)

    def test_disjoint_boxes(self):
        a = Box3D([0, 0, 0], [2, 2, 2], 0.0)
        b = Box3D([10, 10, 0], [2, 2, 2], 0.0)
        assert box_iou_bev(a, b) == 0.0

    def test_half_overlap_axis_aligned(self):
        a = Box3D([0, 0, 0], [2, 2, 2], 0.0)
        b = Box3D([1, 0, 0], [2, 2, 2], 0.0)
        # Intersection 1x2=2, union 4+4-2=6.
        assert box_iou_bev(a, b) == pytest.approx(2 / 6, abs=1e-6)

    def test_rotation_invariance(self):
        a = Box3D([0, 0, 0], [4, 2, 1], 0.0)
        b = Box3D([1, 0, 0], [4, 2, 1], 0.0)
        base = box_iou_bev(a, b)
        theta = 0.7
        c, s = np.cos(theta), np.sin(theta)
        rot = np.array([[c, -s], [s, c]])
        ar = Box3D([0, 0, 0], [4, 2, 1], theta)
        brc = rot @ np.array([1.0, 0.0])
        br = Box3D([brc[0], brc[1], 0], [4, 2, 1], theta)
        assert box_iou_bev(ar, br) == pytest.approx(base, abs=1e-6)

    def test_contains(self):
        box = Box3D([0, 0, 0], [2, 2, 2], 0.0)
        pts = np.array([[0, 0, 0], [0.9, 0.9, 0.9], [1.5, 0, 0]])
        assert box.contains(pts).tolist() == [True, True, False]
